"""The Bebop fast path (compiled transfer relations, frontier propagation,
cross-iteration reuse) against the legacy engine: random-program and
corpus differentials, transfer-cache reuse, and the stats plumbing."""

import itertools

from hypothesis import given, settings, strategies as st

from repro import (
    Bebop,
    C2bp,
    SafetySpec,
    check_property,
    parse_c_program,
    parse_predicate_file,
)
from repro.bebop import BebopReuse
from repro.bebop.checker import procedure_fingerprint
from repro.boolprog import (
    BAssert,
    BAssign,
    BAssume,
    BCall,
    BChoose,
    BConst,
    BIf,
    BNondet,
    BNot,
    BProcedure,
    BProgram,
    BSkip,
    BUnknown,
    BVar,
    BWhile,
    parse_bool_program,
    validate_bool_program,
)
from repro.core import C2bpOptions
from repro.engine import EngineContext
from repro.programs import all_table2_programs

_VARS = ["a", "b", "c"]


@st.composite
def bool_exprs(draw, depth=0):
    choice = draw(st.integers(0, 4 if depth < 2 else 1))
    if choice == 0:
        return BVar(draw(st.sampled_from(_VARS)))
    if choice == 1:
        return BConst(draw(st.booleans()))
    if choice == 2:
        return BNot(draw(bool_exprs(depth=depth + 1)))
    from repro.boolprog import BAnd, BOr

    left = draw(bool_exprs(depth=depth + 1))
    right = draw(bool_exprs(depth=depth + 1))
    return BAnd(left, right) if choice == 3 else BOr(left, right)


@st.composite
def bool_stmts(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 2 else 3))
    if choice == 0:
        target = draw(st.sampled_from(_VARS))
        kind = draw(st.integers(0, 2))
        if kind == 0:
            value = draw(bool_exprs())
        elif kind == 1:
            value = BUnknown()
        else:
            value = BChoose(draw(bool_exprs()), draw(bool_exprs()))
        return BAssign([target], [value])
    if choice == 1:
        return BSkip()
    if choice == 2:
        return BAssume(draw(bool_exprs()))
    if choice == 3:
        return BAssert(draw(bool_exprs()))
    if choice == 4:
        then_body = draw(st.lists(bool_stmts(depth=depth + 1), min_size=0, max_size=2))
        else_body = draw(st.lists(bool_stmts(depth=depth + 1), min_size=0, max_size=2))
        cond = BNondet() if draw(st.booleans()) else draw(bool_exprs())
        return BIf(cond, then_body, else_body)
    body = draw(st.lists(bool_stmts(depth=depth + 1), min_size=0, max_size=2))
    return BWhile(BNondet(), body)


@st.composite
def bool_programs(draw):
    body = draw(st.lists(bool_stmts(), min_size=1, max_size=5))
    tail = BSkip()
    tail.labels.append("L")
    program = BProgram()
    program.add_procedure(BProcedure("main", [], list(_VARS), 0, body + [tail]))
    return program


def _assert_same_results(program, main="main"):
    fast = Bebop(program, main=main).run()
    legacy = Bebop(program, main=main, legacy=True).run()
    assert fast.all_invariants() == legacy.all_invariants()
    assert len(fast.assertion_failures) == len(legacy.assertion_failures)
    fast_sites = {(p, n.uid) for p, n, _ in fast.assertion_failures}
    legacy_sites = {(p, n.uid) for p, n, _ in legacy.assertion_failures}
    assert fast_sites == legacy_sites
    return fast, legacy


@settings(max_examples=60, deadline=None)
@given(bool_programs())
def test_fast_equals_legacy_on_random_programs(program):
    validate_bool_program(program)
    _assert_same_results(program)


INTERPROC = """
decl g;

bool flip(p) {
    if (p) { return 0; }
    return 1;
}

void toggle() {
    g = flip(g);
}

void main() {
    decl x;
    g = 1;
    toggle();
    L1: skip;
    x = flip(g);
    assert (x);
    while (*) {
        toggle();
        toggle();
    }
    L2: assert (!g);
}
"""


def test_fast_equals_legacy_interprocedural():
    program = parse_bool_program(INTERPROC)
    fast, legacy = _assert_same_results(program)
    assert fast.invariant_string("main", label="L1") == "!{g}"
    stats = fast.statistics()
    assert stats["mode"] == "fast"
    assert stats["transfers_compiled"] > 0
    assert legacy.statistics()["mode"] == "legacy"


def test_fast_equals_legacy_on_table2_corpus():
    for study in all_table2_programs():
        if study.name not in ("partition", "listfind"):
            continue  # the small, fixture-free studies; the benchmark
            # covers the full corpus
        program = parse_c_program(study.source, study.name)
        predicates = parse_predicate_file(study.predicate_text, program)
        boolean_program = C2bp(program, predicates).run()
        _assert_same_results(boolean_program, main=study.entry)


def test_context_option_selects_legacy():
    program = parse_bool_program(INTERPROC)
    context = EngineContext(options=C2bpOptions(bebop_legacy=True))
    checker = Bebop(program, context=context)
    assert checker.legacy
    assert checker.run().statistics()["mode"] == "legacy"


# -- cross-run reuse ------------------------------------------------------------


def test_reuse_recompiles_nothing_for_unchanged_program():
    program = parse_bool_program(INTERPROC)
    reuse = BebopReuse()
    first = Bebop(program, reuse=reuse)
    baseline = first.run().all_invariants()
    assert first.transfers_compiled > 0 and first.transfers_reused == 0
    reuse.end_iteration()
    second = Bebop(program, reuse=reuse)
    assert second.transfers_compiled == 0
    assert second.transfers_reused == first.transfers_compiled
    assert second.run().all_invariants() == baseline
    snapshot = reuse.snapshot()
    assert snapshot["iterations"] == 1
    assert snapshot["transfers_reused"] == first.transfers_compiled


def test_reuse_recompiles_only_changed_procedures():
    changed = INTERPROC.replace("L1: skip;", "L1: x = 0;")
    before = parse_bool_program(INTERPROC)
    after = parse_bool_program(changed)
    reuse = BebopReuse()
    Bebop(before, reuse=reuse).run()
    reuse.end_iteration()
    second = Bebop(after, reuse=reuse)
    # main changed; flip and toggle compile tables are reused.
    reused_procs = {
        name
        for name in after.procedures
        if procedure_fingerprint(after, after.procedures[name])
        == procedure_fingerprint(before, before.procedures[name])
    }
    assert reused_procs == {"flip", "toggle"}
    assert second.transfers_reused > 0
    assert second.transfers_compiled > 0
    assert (
        second.run().all_invariants()
        == Bebop(after, legacy=True).run().all_invariants()
    )


def test_gc_between_iterations_bounds_nodes():
    program = parse_bool_program(INTERPROC)
    reuse = BebopReuse()
    sizes = []
    for _ in range(4):
        Bebop(program, reuse=reuse).run()
        reuse.end_iteration()
        sizes.append(reuse.manager.live_nodes)
    # Collection keeps the unique table from growing run over run.
    assert sizes[-1] == sizes[0]
    assert reuse.manager.gc_runs == 4


def test_cegar_reports_transfer_reuse():
    from repro.programs import all_drivers

    driver = next(d for d in all_drivers() if d.name == "floppy")
    spec = SafetySpec.complete_exactly_once("IoCompleteRequest")
    context = EngineContext(options=C2bpOptions())
    result = check_property(
        driver.source, spec, entry=driver.entry, max_iterations=8, context=context
    )
    assert result.iterations > 1  # needs refinement for reuse to show up
    snapshot = context.stats.snapshot()
    assert snapshot["bebop_reuse"]["transfers_reused"] > 0
    per_iteration = snapshot["iterations"]
    assert per_iteration[0]["bebop_transfers_reused"] == 0
    assert any(r["bebop_transfers_reused"] > 0 for r in per_iteration[1:])
    # The bebop section carries the BDD counters for --stats-json.
    assert "bdd" in snapshot["bebop"]
    assert snapshot["bebop"]["bdd"]["ite_calls"] > 0


def test_cegar_verdicts_match_legacy():
    from repro.programs import all_drivers

    driver = next(d for d in all_drivers() if d.name == "floppy")
    spec = SafetySpec.complete_exactly_once("IoCompleteRequest")
    fast = check_property(
        driver.source,
        spec,
        entry=driver.entry,
        max_iterations=8,
        context=EngineContext(options=C2bpOptions()),
    )
    legacy = check_property(
        driver.source,
        spec,
        entry=driver.entry,
        max_iterations=8,
        context=EngineContext(options=C2bpOptions(bebop_legacy=True)),
    )
    assert fast.verdict == legacy.verdict
    assert fast.iterations == legacy.iterations
