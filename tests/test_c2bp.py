"""End-to-end tests for C2bp on the paper's Figure 1 (partition) and other
abstraction behaviours (assignments, conditionals, enforce, cubes)."""

import pytest

from repro.cfront import parse_c_program, parse_expression
from repro.boolprog import (
    BAssert,
    BAssign,
    BAssume,
    BChoose,
    BConst,
    BIf,
    BNondet,
    BSkip,
    BUnknown,
    BVar,
    BWhile,
)
from repro.bebop import Bebop
from repro.core import C2bp, C2bpOptions, parse_predicate_file
from repro.core.cubes import CubeSearch
from repro.prover import Prover


PARTITION_SRC = r"""
typedef struct cell {
    int val;
    struct cell* next;
} *list;

list partition(list *l, int v) {
    list curr, prev, newl, nextcurr;
    curr = *l;
    prev = NULL;
    newl = NULL;
    while (curr != NULL) {
        nextcurr = curr->next;
        if (curr->val > v) {
            if (prev != NULL) {
                prev->next = nextcurr;
            }
            if (curr == *l) {
                *l = nextcurr;
            }
            curr->next = newl;
L:          newl = curr;
        } else {
            prev = curr;
        }
        curr = nextcurr;
    }
    return newl;
}
"""

PARTITION_PREDS = """
partition
curr == NULL, prev == NULL,
curr->val > v, prev->val > v
"""


@pytest.fixture(scope="module")
def partition_bp():
    program = parse_c_program(PARTITION_SRC, "partition.c")
    predicates = parse_predicate_file(PARTITION_PREDS, program)
    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    return program, boolean_program, tool


def find_by_comment(stmts, text):
    found = []

    def visit(body):
        for stmt in body:
            if stmt.comment and text in stmt.comment:
                found.append(stmt)
            for sub in stmt.substatements():
                visit(sub)

    visit(stmts)
    return found


def test_partition_declares_four_booleans(partition_bp):
    _, bp, _ = partition_bp
    proc = bp.procedures["partition"]
    names = set(proc.formals) | set(proc.locals)
    assert names == {"curr==0", "prev==0", "curr->val>v", "prev->val>v"}


def test_partition_prev_null_assignment(partition_bp):
    # prev = NULL  =>  {prev==NULL} = true;  {prev->val>v} = unknown();
    _, bp, _ = partition_bp
    proc = bp.procedures["partition"]
    (stmt,) = find_by_comment(proc.body, "prev = 0;")
    assert isinstance(stmt, BAssign)
    updates = dict(zip(stmt.targets, stmt.values))
    assert updates["prev==0"] == BConst(True)
    assert isinstance(updates["prev->val>v"], BUnknown)
    assert set(updates) == {"prev==0", "prev->val>v"}


def test_partition_prev_curr_copy(partition_bp):
    # prev = curr  =>  copies of the corresponding curr predicates.
    _, bp, _ = partition_bp
    proc = bp.procedures["partition"]
    (stmt,) = find_by_comment(proc.body, "prev = curr;")
    updates = dict(zip(stmt.targets, stmt.values))
    assert updates["prev==0"] == BVar("curr==0")
    assert updates["prev->val>v"] == BVar("curr->val>v")


def test_partition_newl_null_is_skip(partition_bp):
    # newl = NULL cannot affect any input predicate: skip.
    _, bp, _ = partition_bp
    proc = bp.procedures["partition"]
    (stmt,) = find_by_comment(proc.body, "newl = 0;")
    assert isinstance(stmt, BSkip)


def test_partition_curr_nextcurr_invalidates(partition_bp):
    # curr = nextcurr: no information about nextcurr => unknown().
    _, bp, _ = partition_bp
    proc = bp.procedures["partition"]
    (stmt,) = find_by_comment(proc.body, "curr = nextcurr;")
    assert isinstance(stmt, BAssign)
    assert all(isinstance(v, BUnknown) for v in stmt.values)
    assert set(stmt.targets) == {"curr==0", "curr->val>v"}


def test_partition_loop_structure(partition_bp):
    # while (curr != NULL) => while (*) { assume(!{curr==NULL}); ... }
    # followed by assume({curr==NULL}).
    _, bp, _ = partition_bp
    proc = bp.procedures["partition"]
    loop = next(s for s in proc.body if isinstance(s, BWhile))
    assert isinstance(loop.cond, BNondet)
    first = loop.body[0]
    assert isinstance(first, BAssume)
    assert first.cond == parse_bool("!{curr==0}")
    loop_index = proc.body.index(loop)
    after = proc.body[loop_index + 1]
    assert isinstance(after, BAssume)
    assert after.cond == BVar("curr==0")


def parse_bool(text):
    from repro.boolprog.parser import _Parser

    return _Parser(text)._parse_expr()


def test_partition_field_stores_are_skips(partition_bp):
    # prev->next / curr->next stores touch the next field only; the val
    # predicates are unaffected (field-based disambiguation).
    _, bp, _ = partition_bp
    proc = bp.procedures["partition"]
    for text in ("prev->next = nextcurr;", "curr->next = newl;", "*l = nextcurr;"):
        (stmt,) = find_by_comment(proc.body, text)
        assert isinstance(stmt, BSkip), text


def test_partition_branch_assumes(partition_bp):
    _, bp, _ = partition_bp
    proc = bp.procedures["partition"]
    branch = find_by_comment(proc.body, "if (curr->val > v)")[0]
    assert isinstance(branch, BIf)
    assert isinstance(branch.then_body[0], BAssume)
    assert branch.then_body[0].cond == BVar("curr->val>v")
    assert isinstance(branch.else_body[0], BAssume)


def test_partition_invariant_at_L(partition_bp):
    # The Section 2.2 result: at L,
    # curr != NULL && curr->val > v && (prev->val <= v || prev == NULL).
    _, bp, _ = partition_bp
    result = Bebop(bp, main="partition").run()
    cubes = result.invariant_cubes("partition", label="L")
    assert cubes  # L reachable
    for cube in cubes:
        assert cube["curr==0"] is False
        assert cube["curr->val>v"] is True
        assert cube.get("prev->val>v") is False or cube.get("prev==0") is True


def test_partition_invariant_refines_aliasing(partition_bp):
    # The invariant implies *prev and *curr are not aliases (prev != curr),
    # derived automatically by the decision procedures.
    _, bp, _ = partition_bp
    prover = Prover()
    e = parse_expression
    invariant = [e("curr != 0"), e("curr->val > v"), e("prev->val <= v || prev == 0")]
    assert prover.implies(invariant, e("prev != curr"))


def test_partition_prover_call_count_reasonable(partition_bp):
    _, _, tool = partition_bp
    # The paper's partition row reports 560 prover calls; ours should be in
    # the same regime (same predicates, same optimizations), not orders of
    # magnitude off.
    assert 50 <= tool.stats.prover_calls <= 2000


# -- feature-focused abstractions ------------------------------------------------


def abstract(source, predicate_text, options=None):
    program = parse_c_program(source)
    predicates = parse_predicate_file(predicate_text, program)
    tool = C2bp(program, predicates, options=options)
    return program, tool.run(), tool


def test_assert_abstastraction_precise_predicate():
    _, bp, _ = abstract(
        "void main(int x) { if (x > 0) { assert(x > 0); } }",
        "main\nx > 0\n",
    )
    result = Bebop(bp).run()
    assert not result.error_reached


def test_assert_abstraction_spurious_without_predicates():
    # Without predicates the assert cannot be discharged: the abstraction
    # over-approximates and reports a (possibly spurious) failure.
    _, bp, _ = abstract(
        "void main(int x) { if (x > 0) { assert(x > 0); } }",
        "main\n",
    )
    result = Bebop(bp).run()
    assert result.error_reached


def test_assert_failure_detected_through_abstraction():
    _, bp, _ = abstract(
        "void main(int x) { x = 0; assert(x > 0); }",
        "main\nx > 0\n",
    )
    result = Bebop(bp).run()
    assert result.error_reached


def test_arithmetic_strengthening():
    # x = x + 1 with predicates {x < 5, x == 2}: after x==2, x<5 holds.
    _, bp, _ = abstract(
        """
        void main(void) {
            int x;
            x = 2;
            x = x + 1;
            assert(x < 5);
        }
        """,
        "main\nx < 5, x == 2\n",
    )
    result = Bebop(bp).run()
    assert not result.error_reached


def test_enforce_invariant_generated():
    _, bp, _ = abstract(
        "void main(void) { int x; x = 1; }",
        "main\nx == 1, x == 2\n",
    )
    proc = bp.procedures["main"]
    assert proc.enforce is not None
    # Omega must exclude the state where both predicates hold.
    from repro.bebop.checker import Bebop as _B  # evaluation via interp instead

    from repro.boolprog.interp import BoolProgramInterpreter

    interp = BoolProgramInterpreter(bp)
    assert not interp.eval_expr(proc.enforce, {"x==1": True, "x==2": True})
    assert interp.eval_expr(proc.enforce, {"x==1": True, "x==2": False})


def test_enforce_disabled_by_option():
    _, bp, _ = abstract(
        "void main(void) { int x; x = 1; }",
        "main\nx == 1, x == 2\n",
        options=C2bpOptions(compute_enforce=False),
    )
    assert bp.procedures["main"].enforce is None


def test_goto_and_labels_copied():
    _, bp, _ = abstract(
        "void main(void) { int x; goto out; x = 1; out: x = 2; }",
        "main\nx == 2\n",
    )
    from repro.boolprog import BGoto

    proc = bp.procedures["main"]
    gotos = [s for s in proc.body if isinstance(s, BGoto)]
    assert gotos and gotos[0].label == "out"
    assert any("out" in s.labels for s in proc.body)


def test_unknown_rhs_invalidates():
    # x = * (environment input): predicates about x become unknown.
    _, bp, _ = abstract(
        "void main(void) { int x; x = *; }",
        "main\nx == 1\n",
    )
    proc = bp.procedures["main"]
    assign = next(s for s in proc.body if isinstance(s, BAssign))
    assert isinstance(assign.values[0], (BUnknown, BChoose))


# -- cube search unit behaviour ------------------------------------------------------


class _Cand:
    def __init__(self, text):
        self.expr = parse_expression(text)
        self.name = text.replace(" ", "")


def test_cube_search_finds_strengthening():
    search = CubeSearch(Prover(), C2bpOptions())
    candidates = [_Cand("x < 5"), _Cand("x == 2")]
    cubes = search.implicant_cubes(candidates, parse_expression("x < 4"))
    # E(F_V(x < 4)) = (x == 2), per Section 4.1.
    assert len(cubes) == 1
    ((index, polarity),) = cubes[0]
    assert candidates[index].name == "x==2" and polarity is True


def test_cube_search_empty_when_nothing_implies():
    search = CubeSearch(Prover(), C2bpOptions())
    candidates = [_Cand("y > 0")]
    cubes = search.implicant_cubes(candidates, parse_expression("x < 4"))
    assert cubes == []


def test_cube_search_true_phi():
    search = CubeSearch(Prover(), C2bpOptions())
    cubes = search.implicant_cubes([_Cand("x > 0")], parse_expression("x == x"))
    assert cubes == [()]


def test_cube_search_prime_implicants_only():
    search = CubeSearch(Prover(), C2bpOptions(syntactic_heuristics=False))
    candidates = [_Cand("x > 0"), _Cand("y > 0")]
    cubes = search.implicant_cubes(candidates, parse_expression("x > 0"))
    # {x>0} alone implies it; the 2-cubes containing it must be pruned.
    assert cubes == [((0, True),)]


def test_cube_length_bound_loses_precision():
    prover = Prover()
    search = CubeSearch(prover, C2bpOptions(max_cube_length=1, syntactic_heuristics=False))
    candidates = [_Cand("x > 0"), _Cand("y > 0")]
    phi = parse_expression("x + y > 0")
    assert search.implicant_cubes(candidates, phi) == []
    search2 = CubeSearch(prover, C2bpOptions(max_cube_length=2, syntactic_heuristics=False))
    assert search2.implicant_cubes(candidates, phi) == [((0, True), (1, True))]


def test_distribute_f_through_and():
    prover = Prover()
    options = C2bpOptions(distribute_f=True)
    search = CubeSearch(prover, options)
    candidates = [_Cand("x > 0"), _Cand("y > 0")]
    phi = parse_expression("x > 0 && y > 0")
    expr = search.f_expr(candidates, phi)
    from repro.boolprog import BAnd

    assert isinstance(expr, BAnd)
