"""The static-analysis subsystem: hand-checked mod/ref and liveness
facts, interval fixpoints and the query discharger, boolean-program
dead-variable elimination (with a simulation-equivalence property test),
and the cross-iteration abstraction reuse."""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    WILDCARD,
    ModRefSummaries,
    TouchOracle,
    eliminate_dead_variables,
    location_keyset,
)
from repro.analysis.intervals import (
    FunctionIntervals,
    IntervalDischarger,
    interval_candidate_predicates,
)
from repro.bebop import Bebop
from repro.boolprog.interp import (
    AssumeBlocked,
    BoolAssertionFailure,
    BoolInterpError,
    BoolProgramInterpreter,
)
from repro.boolprog.printer import print_bool_program
from repro.cfront import parse_c_program
from repro.cfront.cfg import build_program_cfgs
from repro.cfront.parser import parse_expression
from repro.cfront.pretty import pretty_expr
from repro.core import C2bp, C2bpOptions, parse_predicate_file
from repro.engine import EngineContext
from repro.fuzz import ProgramGenerator
from repro.slam.cegar import _interval_fallback_predicates, cegar_loop


def _abstract(source, predicate_text, **options):
    program = parse_c_program(source, name="test")
    predicates = parse_predicate_file(predicate_text, program)
    context = EngineContext(options=C2bpOptions(**options))
    tool = C2bp(program, predicates, context=context)
    return program, tool, tool.run()


# -- mod/ref ------------------------------------------------------------------------

MODREF_SOURCE = """
int g;
int helper(int p, int *q) {
    *q = p;
    g = g + 1;
    return 0;
}
void main(void) {
    int a, b;
    a = 0;
    b = helper(1, &a);
}
"""


def test_modref_assignment_summary():
    program = parse_c_program(MODREF_SOURCE, name="modref")
    summaries = ModRefSummaries(program)
    helper = program.functions["helper"]
    increment = helper.body[1]  # g = g + 1
    summary = summaries.statement_summary(increment, "helper")
    assert set(summary.mod) == {"g"}
    assert "g" in summary.ref
    assert not summary.has_call


def test_modref_call_folds_callee_effects():
    program = parse_c_program(MODREF_SOURCE, name="modref")
    summaries = ModRefSummaries(program)
    main = program.functions["main"]
    call = main.body[1]  # b = helper(1, &a)
    summary = summaries.statement_summary(call, "main")
    assert summary.has_call and summary.callees == {"helper"}
    # The callee's global write is caller-visible by name; its store
    # through the pointer argument is only representable as a wildcard.
    assert "g" in summary.mod
    assert WILDCARD in summary.mod
    assert "b" in summary.mod
    # helper's function-level summary records the pointer store itself.
    assert "*q" in summaries.function_mod["helper"]


def test_touch_oracle_matches_pairwise_semantics():
    calls = []

    def may_alias(a, b):
        calls.append((pretty_expr(a), pretty_expr(b)))
        return "*p" in (pretty_expr(a), pretty_expr(b))

    oracle = TouchOracle(may_alias)
    left = location_keyset(parse_expression("x + 1"))
    right = location_keyset(parse_expression("x * y"))
    assert oracle.touch(left, right)  # text-equal fast path, no oracle call
    assert not calls
    assert not oracle.touch({}, right)  # empty sets never touch
    starred = location_keyset(parse_expression("*p"))
    other = location_keyset(parse_expression("y"))
    assert oracle.touch(starred, other)
    first_calls = len(calls)
    assert first_calls > 0
    assert oracle.touch(starred, other)  # memoized: no new oracle calls
    assert len(calls) == first_calls
    # Without an alias oracle, nonempty keysets conservatively touch.
    assert TouchOracle(None).touch(starred, other)


# -- live predicates ----------------------------------------------------------------

LIVE_SOURCE = """
void main(int x) {
    int a, b;
    a = x + 1;
    b = 0;
    a = 1;
    b = x;
    assert(b != 0 || x == 0);
}
"""

LIVE_PREDICATES = """
main
a == 0, b != 0, x == 0
"""


def test_live_predicates_prune_dead_slots():
    # {a==0} is overwritten at `a = 1` before anything can observe it, so
    # its slot at `a = x + 1` (a real cube search: the WP `x + 1 == 0`
    # is not syntactically a candidate) is dead:
    # it must become unknown() and skip the search.
    program, tool, bp = _abstract(LIVE_SOURCE, LIVE_PREDICATES)
    printed = print_bool_program(bp)
    assert tool.analysis is not None
    assert tool.analysis.stats.predicates_skipped_dead > 0
    assert "{a==0} = unknown()" in printed

    _, off_tool, off_bp = _abstract(
        LIVE_SOURCE, LIVE_PREDICATES, live_predicates=False
    )
    off_printed = print_bool_program(off_bp)
    assert "{a==0} = unknown()" not in off_printed
    # Pruning must not change the model-checking verdict.
    assert (
        Bebop(bp).run().error_reached == Bebop(off_bp).run().error_reached
    )
    # The dead slots' cube searches were skipped, not just rewritten.
    assert tool.stats.prover_calls < off_tool.stats.prover_calls


def test_live_predicates_keep_observed_slots():
    program, tool, bp = _abstract(LIVE_SOURCE, LIVE_PREDICATES)
    liveness = tool.analysis.liveness("main")
    assert liveness is not None
    func = program.functions["main"]
    assign_b = func.body[3]  # b = x — {b!=0} is read by the assert below
    assert liveness.is_live(assign_b, "b!=0")
    # {a==0} dies at `a = x + 1`: it is overwritten at `a = 1` before any
    # observation point (the function-exit label anchor sits *after* the
    # second write, so only the first write's slot is dead).
    assign_a = func.body[0]  # a = x + 1
    assert not liveness.is_live(assign_a, "a==0")
    assign_a2 = func.body[2]  # a = 1 — live: the exit label observes it
    assert liveness.is_live(assign_a2, "a==0")


# -- intervals ----------------------------------------------------------------------

LOOP_SOURCE = """
void main(void) {
    int i;
    i = 0;
    while (i < 10) {
        i = i + 1;
    }
    assert(i >= 10);
}
"""


def test_interval_fixpoint_bounds_loop_counter():
    program = parse_c_program(LOOP_SOURCE, name="loop")
    cfg = build_program_cfgs(program)["main"]
    intervals = FunctionIntervals(cfg)
    facts = intervals.loop_head_facts()
    assert facts, "the while loop must produce a loop-head fact"
    # Widening then narrowing should recover i ∈ [0, 10] at the head.
    bounds = {
        name: interval
        for _node, env in facts
        for name, interval in env.items()
    }
    assert bounds["i"][0] == 0
    assert bounds["i"][1] == 10

    candidates = [
        pretty_expr(e) for e in interval_candidate_predicates(cfg)
    ]
    assert "i >= 0" in candidates
    assert "i <= 10" in candidates


def test_interval_discharger_units():
    discharger = IntervalDischarger()

    def decide(antecedent_texts, goal_text):
        return discharger.decide(
            [parse_expression(t) for t in antecedent_texts],
            parse_expression(goal_text),
        )

    assert decide(["x > 5"], "x > 1")
    assert not decide(["x > 0"], "x > 5")
    # Contradictory antecedents discharge any goal (the cube is empty).
    assert decide(["x > 2", "x < 1"], "x == 99")
    # `!=` goals are non-convex: an unconstrained box must NOT entail
    # them (regression: the constraint translation models `!=` as
    # no-information, which is vacuously true when read back as a goal).
    assert not decide([], "x != 0")
    assert not decide(["y > 0"], "x != 0")
    # ... but integer tightening can put the box on one side.
    assert decide(["x > 0"], "x != 0")
    # Zero coefficients (`0 * y` is affine with an empty form) must not
    # reach the propagator's divisions (regression: fuzz-found
    # ZeroDivisionError in constraint propagation).
    assert decide(["x > 0 * y", "x < 2"], "x == 1")
    assert not decide(["x <= 0 * y"], "x < 0")


def test_newton_stall_interval_fallback_predicates():
    program, tool, _ = _abstract(LOOP_SOURCE, "main\ni == 99\n")
    predicates = tool.predicates
    fallback = _interval_fallback_predicates(program, tool, predicates)
    texts = {pretty_expr(p.expr) for p in fallback}
    assert "i >= 0" in texts
    assert "i <= 10" in texts
    for predicate in fallback:
        predicates.add(predicate)
    # Deduplication: a second stall must not re-propose the same bounds.
    assert _interval_fallback_predicates(program, tool, predicates) == []


# -- boolean-program dead-variable elimination --------------------------------------


class KeyedChooser:
    """Deterministic chooser keyed by *what* is being chosen rather than
    by call order, so two structurally different translations of the same
    program (e.g. before/after DCE) draw identical values for the choices
    they share while skipped choices consume nothing."""

    def __init__(self, seed):
        self.seed = seed
        self._counts = {}

    def choose(self, stmt, what):
        key = repr(what)
        occurrence = self._counts.get(key, 0)
        self._counts[key] = occurrence + 1
        return bool(hash((self.seed, key, occurrence)) & 1)


def _simulate(bool_program, seed, entry):
    chooser = KeyedChooser(seed)
    interp = BoolProgramInterpreter(bool_program, chooser=chooser)
    # Formal parameter lists survive DCE (interface stability), so the
    # keyed entry-argument draws line up between the two programs.
    formals = bool_program.procedures[entry].formals
    args = [chooser.choose(None, ("entry", entry, name)) for name in formals]
    try:
        interp.call(entry, args)
    except BoolAssertionFailure as failure:
        return ("assert", failure.stmt.source_sid, failure.stmt.comment)
    except AssumeBlocked:
        return ("blocked",)
    except BoolInterpError:
        return ("limit",)
    return ("done",)


@settings(max_examples=25, deadline=None)
@given(index=st.integers(0, 5), seed=st.integers(0, 2**16))
def test_bp_dce_preserves_simulation(index, seed):
    """DCE'd boolean programs simulate identically: same outcome (normal
    return / blocked assume / failing assert, by source site) under the
    same keyed resolution of nondeterminism."""
    bp, entry = _DCE_CASES[index]
    slim, removed = eliminate_dead_variables(bp)
    assert _simulate(bp, seed, entry) == _simulate(slim, seed, entry)


def _dce_cases():
    cases = []
    generator = ProgramGenerator(seed="dce-roundtrip")
    index = 0
    while len(cases) < 6:
        case = generator.generate(index)
        index += 1
        program = parse_c_program(case.source, name=case.name)
        predicates = parse_predicate_file(case.predicate_text, program)
        tool = C2bp(program, predicates, context=EngineContext(options=C2bpOptions()))
        cases.append((tool.run(), case.entry))
    return cases


_DCE_CASES = _dce_cases()


def test_bp_dce_removes_dead_variable():
    # {a==0} is dead in the liveness example: its boolean variable is
    # written but never read, so DCE must drop it.
    _, _, bp = _abstract(LIVE_SOURCE, LIVE_PREDICATES, live_predicates=False)
    assert "{a==0}" in print_bool_program(bp)
    slim, removed = eliminate_dead_variables(bp)
    assert removed >= 1
    assert "{a==0}" not in print_bool_program(slim)
    assert (
        Bebop(bp).run().error_reached == Bebop(slim).run().error_reached
    )


# -- cross-iteration abstraction reuse ----------------------------------------------

REFINE_SOURCE = """
void main(int x) {
    int i, z;
    z = 7;
    z = z + 1;
    i = 0;
    if (x > 0) {
        i = 1;
    }
    if (x > 0) {
        assert(i == 1);
    }
}
"""


def test_reuse_across_cegar_iterations():
    program = parse_c_program(REFINE_SOURCE, name="refine")
    context = EngineContext(options=C2bpOptions())
    result = cegar_loop(program, max_iterations=6, context=context)
    assert result.verdict == "safe"
    assert result.iterations >= 2
    stats = context.analysis_stats
    # The z-statements' mod/ref closures never meet the discovered
    # predicates, so later iterations replay their translations.
    assert stats.c2bp_stmts_reused > 0
    assert stats.c2bp_stmts_retranslated > 0

    # The analysis passes must not change the verdict.
    off = cegar_loop(
        program,
        max_iterations=6,
        context=EngineContext(options=C2bpOptions(use_analysis=False)),
    )
    assert off.verdict == result.verdict
