"""Tests for expression utilities: traversal, substitution, syntactic
analyses, and constant folding (with a semantics-preservation property)."""

from hypothesis import given, settings, strategies as st

from repro.cfront import cast as C
from repro.cfront import parse_expression
from repro.cfront.exprutils import (
    contains_call,
    derefs,
    fold_constants,
    is_trivially_false,
    is_trivially_true,
    locations,
    max_locations,
    multi_deref_depth,
    substitute,
    variables,
    walk,
)


def e(text):
    return parse_expression(text)


# -- traversal -------------------------------------------------------------


def test_walk_preorder():
    nodes = list(walk(e("a + b * c")))
    assert isinstance(nodes[0], C.BinOp) and nodes[0].op == "+"
    names = [n.name for n in nodes if isinstance(n, C.Id)]
    assert names == ["a", "b", "c"]


def test_variables():
    assert variables(e("x + y * x")) == {"x", "y"}
    assert variables(e("3 + 4")) == set()
    assert variables(e("p->val > v")) == {"p", "v"}


def test_derefs():
    assert derefs(e("*p + x")) == {"p"}
    assert derefs(e("p->val")) == {"p"}
    assert derefs(e("a[i]")) == {"a"}
    assert derefs(e("x + y")) == set()


def test_locations_includes_nested():
    locs = locations(e("p->val > v"))
    assert e("p->val") in locs
    assert e("p") in locs
    assert e("v") in locs


def test_max_locations_drops_inner():
    locs = max_locations(e("p->val > v"))
    assert e("p->val") in locs
    assert e("p") not in locs
    assert e("v") in locs


def test_contains_call():
    assert contains_call(e("f(x) + 1"))
    assert not contains_call(e("x + 1"))


def test_multi_deref_depth():
    assert multi_deref_depth(e("x")) == 0
    assert multi_deref_depth(e("*p")) == 1
    assert multi_deref_depth(e("p->val")) == 1
    assert multi_deref_depth(e("**p")) == 2
    assert multi_deref_depth(e("p->next->val")) == 2


# -- substitution -----------------------------------------------------------


def test_substitute_simple():
    result = substitute(e("x + y"), {e("x"): e("z")})
    assert result == e("z + y")


def test_substitute_maximal_match_first():
    # Substituting p->val must not also substitute the inner p.
    result = substitute(e("p->val + p"), {e("p->val"): e("t"), e("p"): e("q")})
    assert result == e("t + q")


def test_substitute_simultaneous():
    # Classic swap: [y/x, x/y] applied simultaneously.
    result = substitute(e("x + y"), {e("x"): e("y"), e("y"): e("x")})
    assert result == e("y + x")


def test_substitute_no_rescan_of_replacement():
    # The replacement contains x, but must not be rewritten again.
    result = substitute(e("x"), {e("x"): e("x + 1")})
    assert result == e("x + 1")


def test_substitute_inside_locations():
    result = substitute(e("prev->val > v"), {e("prev"): e("curr")})
    assert result == e("curr->val > v")


def test_substitute_identity_returns_same_object():
    expr = e("a + b")
    assert substitute(expr, {e("zzz"): e("q")}) is expr


# -- constant folding ---------------------------------------------------------


def test_fold_arithmetic():
    assert fold_constants(e("2 + 3 * 4")) == C.IntLit(14)
    assert fold_constants(e("(7 - 2) / 2")) == C.IntLit(2)
    assert fold_constants(e("-7 / 2")) == C.IntLit(-3)  # C truncation


def test_fold_comparisons():
    assert is_trivially_true(e("3 < 5"))
    assert is_trivially_false(e("3 > 5"))


def test_fold_short_circuit_with_one_constant():
    assert fold_constants(e("1 && x > 0")) == e("x > 0")
    assert fold_constants(e("0 && x > 0")) == C.IntLit(0)
    assert fold_constants(e("0 || x > 0")) == e("x > 0")
    assert fold_constants(e("1 || x > 0")) == C.IntLit(1)


def test_fold_division_by_zero_left_alone():
    folded = fold_constants(e("1 / 0"))
    assert isinstance(folded, C.BinOp) and folded.op == "/"


def test_fold_address_simplifications():
    assert fold_constants(C.Deref(C.AddrOf(C.Id("x")))) == C.Id("x")
    assert fold_constants(C.AddrOf(C.Deref(C.Id("p")))) == C.Id("p")


def test_negate_relational_folding():
    assert C.negate(e("x < y")) == e("x >= y")
    assert C.negate(e("x == y")) == e("x != y")
    assert C.negate(e("!x")) == e("x")
    assert C.negate(e("x < y && z == 0")) == e("x >= y || z != 0")


# -- property: folding preserves semantics ----------------------------------------

_VARS = ["a", "b"]


def _expr_strategy():
    atoms = st.one_of(
        st.sampled_from(_VARS).map(C.Id),
        st.integers(-4, 4).map(C.IntLit),
    )
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.builds(
                C.BinOp,
                st.sampled_from(["+", "-", "*", "<", "<=", "==", "!=", "&&", "||"]),
                children,
                children,
            ),
            st.builds(C.UnOp, st.sampled_from(["-", "!"]), children),
        ),
        max_leaves=8,
    )


def _eval(expr, env):
    if isinstance(expr, C.IntLit):
        return expr.value
    if isinstance(expr, C.Id):
        return env[expr.name]
    if isinstance(expr, C.UnOp):
        value = _eval(expr.operand, env)
        return {"-": -value, "!": int(not value), "+": value, "~": ~value}[expr.op]
    left = _eval(expr.left, env)
    right = _eval(expr.right, env)
    table = {
        "+": left + right,
        "-": left - right,
        "*": left * right,
        "<": int(left < right),
        "<=": int(left <= right),
        ">": int(left > right),
        ">=": int(left >= right),
        "==": int(left == right),
        "!=": int(left != right),
        "&&": int(bool(left) and bool(right)),
        "||": int(bool(left) or bool(right)),
    }
    return table[expr.op]


@settings(max_examples=200, deadline=None)
@given(_expr_strategy(), st.integers(-3, 3), st.integers(-3, 3))
def test_fold_constants_preserves_value(expr, a, b):
    env = {"a": a, "b": b}
    assert _eval(fold_constants(expr), env) == _eval(expr, env)


@settings(max_examples=150, deadline=None)
@given(_expr_strategy(), st.integers(-3, 3), st.integers(-3, 3))
def test_negate_is_logical_negation(expr, a, b):
    env = {"a": a, "b": b}
    assert bool(_eval(C.negate(expr), env)) == (not bool(_eval(expr, env)))
