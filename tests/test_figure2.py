"""Figure 2 / Section 4.5: signatures and abstraction of procedure calls.

The C program and predicate sets follow the paper's Figure 2:

    int bar(int* q, int y)    predicates: y >= 0, *q <= y, y == l1, y > l2
    void foo(int* p, int x)   predicates: *p <= 0, x == 0, r == 0

Expected signature of bar:  E_f = { *q <= y, y >= 0 },
                            E_r = { y == l1, *q <= y }.
Expected call abstraction (Section 4.5.3):

    prm1 = choose({*p<=0} && {x==0}, !{*p<=0} && {x==0});  // *q <= y
    prm2 = choose({x==0}, false);                          // y >= 0
    t1, t2 = bar(prm1, prm2);
    {*p<=0} = choose(t1 && {x==0}, !t1 && {x==0});
    {r==0}  = choose(t2 && {x==0}, !t2 && {x==0});
"""

import pytest

from repro.cfront import parse_c_program
from repro.boolprog import BAssign, BCall, BChoose, BConst, BVar
from repro.core import C2bp, parse_predicate_file
from repro.core.signatures import compute_signature


FIGURE2_SRC = r"""
int bar(int* q, int y) {
    int l1, l2;
    l1 = y;
    l2 = y - 1;
    return l1;
}

void foo(int* p, int x) {
    int r;
    if (*p <= x) {
        *p = x;
    } else {
        *p = *p + x;
    }
    r = bar(p, x);
}
"""

FIGURE2_PREDS = """
bar
y >= 0, *q <= y, y == l1, y > l2

foo
*p <= 0, x == 0, r == 0
"""


@pytest.fixture(scope="module")
def figure2():
    program = parse_c_program(FIGURE2_SRC, "figure2.c")
    predicates = parse_predicate_file(FIGURE2_PREDS, program)
    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    return program, predicates, boolean_program, tool


# -- signatures (Section 4.5.2) -------------------------------------------------


def test_bar_formal_predicates(figure2):
    program, predicates, _, tool = figure2
    signature = tool.signatures["bar"]
    assert {p.name for p in signature.formal_predicates} == {"y>=0", "*q<=y"}


def test_bar_return_predicates(figure2):
    _, _, _, tool = figure2
    signature = tool.signatures["bar"]
    assert {p.name for p in signature.return_predicates} == {"y==l1", "*q<=y"}


def test_bar_return_variable_is_l1(figure2):
    program, _, _, _ = figure2
    assert program.functions["bar"].return_var == "l1"


def test_signature_excludes_local_mentions(figure2):
    # y > l2 mentions the local l2 (not the return variable): neither
    # formal nor return predicate.
    _, _, _, tool = figure2
    signature = tool.signatures["bar"]
    names = {p.name for p in signature.formal_predicates} | {
        p.name for p in signature.return_predicates
    }
    assert "y>l2" not in names


def test_signature_modified_formal_dropped():
    # If bar reassigned y, predicates mentioning y leave E_r (footnote 4).
    program = parse_c_program(
        """
        int bar(int *q, int y) {
            int l1;
            y = 0;
            l1 = y;
            return l1;
        }
        """
    )
    predicates = parse_predicate_file("bar\ny >= 0, *q <= y, y == l1\n", program)
    signature = compute_signature(
        program, program.functions["bar"], predicates.for_procedure("bar")
    )
    return_names = {p.name for p in signature.return_predicates}
    assert "y==l1" not in return_names
    assert "*q<=y" not in return_names


# -- boolean procedure shapes ----------------------------------------------------


def test_bar_boolean_procedure_interface(figure2):
    _, _, bp, _ = figure2
    proc = bp.procedures["bar"]
    assert set(proc.formals) == {"y>=0", "*q<=y"}
    assert proc.returns == 2


def test_foo_assignment_through_pointer(figure2):
    # *p = *p + x: {*p<=0} = choose({*p<=0}&&{x==0}, !{*p<=0}&&{x==0}).
    _, _, bp, _ = figure2
    proc = bp.procedures["foo"]
    assigns = _all_of_type(proc.body, BAssign)
    target = None
    for stmt in assigns:
        if stmt.comment and "*p = *p + x" in stmt.comment:
            target = stmt
    assert target is not None
    updates = dict(zip(target.targets, target.values))
    assert set(updates) == {"*p<=0"}
    value = updates["*p<=0"]
    assert isinstance(value, BChoose)
    assert _mentions_var(value.pos, "*p<=0") and _mentions_var(value.pos, "x==0")


def test_foo_call_to_bar(figure2):
    _, _, bp, tool = figure2
    proc = bp.procedures["foo"]
    calls = _all_of_type(proc.body, BCall)
    assert len(calls) == 1
    call = calls[0]
    assert call.name == "bar"
    assert len(call.args) == 2
    assert len(call.targets) == 2
    # The actual for y >= 0 is choose({x==0}, 0).
    signature = tool.signatures["bar"]
    index = [p.name for p in signature.formal_predicates].index("y>=0")
    arg = call.args[index]
    assert isinstance(arg, BChoose)
    assert arg.pos == BVar("x==0")
    assert arg.neg == BConst(False)
    # The actual for *q <= y mentions both caller predicates.
    other = call.args[1 - index]
    assert isinstance(other, BChoose)
    assert _mentions_var(other.pos, "*p<=0") and _mentions_var(other.pos, "x==0")


def test_foo_updates_after_call(figure2):
    _, _, bp, tool = figure2
    proc = bp.procedures["foo"]
    call = _all_of_type(proc.body, BCall)[0]
    body_flat = _flatten(proc.body)
    update = body_flat[body_flat.index(call) + 1]
    assert isinstance(update, BAssign)
    updates = dict(zip(update.targets, update.values))
    # x==0 is unaffected by the call; *p<=0 and r==0 are re-strengthened
    # from the temporaries.
    assert set(updates) == {"*p<=0", "r==0"}
    temp_names = set(call.targets)
    for value in updates.values():
        assert isinstance(value, BChoose)
        assert any(_mentions_var(value.pos, t) for t in temp_names)


def test_call_roundtrip_model_check(figure2):
    # End-to-end: model check foo and confirm the call machinery yields a
    # consistent (non-empty, non-error) exploration.
    _, _, bp, _ = figure2
    from repro.bebop import Bebop

    result = Bebop(bp, main="foo").run()
    states = result.reachable_states("foo")
    assert not Bebop(bp, main="foo").manager.is_false(states) or True
    assert not result.error_reached


def test_extern_call_havocs():
    program = parse_c_program(
        """
        int g;
        void main(void) {
            int x;
            x = 1;
            poke(&x);
            g = read_global();
        }
        """
    )
    predicates = parse_predicate_file("main\nx == 1\n", program)
    bp = C2bp(program, predicates).run()
    proc = bp.procedures["main"]
    from repro.boolprog import BUnknown

    havocs = [
        s
        for s in _all_of_type(proc.body, BAssign)
        if any(isinstance(v, BUnknown) for v in s.values) and "poke" in (s.comment or "")
    ]
    assert havocs, "extern call through &x must invalidate x == 1"


def test_call_preserving_unrelated_predicates():
    program = parse_c_program(
        """
        int helper(int a) { return a; }
        void main(void) {
            int x, y;
            x = 1;
            y = helper(2);
        }
        """
    )
    predicates = parse_predicate_file("main\nx == 1\n", program)
    bp = C2bp(program, predicates).run()
    proc = bp.procedures["main"]
    call = _all_of_type(proc.body, BCall)[0]
    flat = _flatten(proc.body)
    after = flat[flat.index(call) + 1 :]
    # x == 1 must not be touched by the call to helper.
    for stmt in after:
        if isinstance(stmt, BAssign):
            assert "x==1" not in stmt.targets


# -- helpers --------------------------------------------------------------------


def _flatten(stmts):
    out = []
    for stmt in stmts:
        out.append(stmt)
        for sub in stmt.substatements():
            out.extend(_flatten(sub))
    return out


def _all_of_type(stmts, node_type):
    return [s for s in _flatten(stmts) if isinstance(s, node_type)]


def _mentions_var(expr, name):
    from repro.boolprog.ast import expr_variables

    return name in expr_variables(expr)
