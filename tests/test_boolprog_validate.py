"""Tests for the boolean-program validator, including the guarantee that
everything C2bp emits is well formed."""

import pytest

from repro.boolprog import parse_bool_program
from repro.boolprog.validate import ValidationError, validate_bool_program
from repro.cfront import parse_c_program
from repro.core import C2bp, parse_predicate_file


def check(source):
    return validate_bool_program(parse_bool_program(source))


def test_valid_program_passes():
    assert check(
        """
        decl g;
        bool id(p) { return p; }
        void main() {
            decl a;
            a = id(g);
            if (*) { a = !a; }
            L: goto L2;
            L2: skip;
        }
        """
    )


def test_unknown_variable_rejected():
    with pytest.raises(ValidationError, match="unknown variable"):
        check("void main() { decl a; a = b; }")


def test_assignment_to_unknown_rejected():
    with pytest.raises(ValidationError, match="assignment to unknown"):
        check("void main() { decl a; b = a; }")


def test_goto_unknown_label_rejected():
    with pytest.raises(ValidationError, match="goto unknown label"):
        check("void main() { goto nowhere; }")


def test_duplicate_label_rejected():
    with pytest.raises(ValidationError, match="duplicate label"):
        check("void main() { L: skip; L: skip; }")


def test_call_unknown_procedure_rejected():
    with pytest.raises(ValidationError, match="unknown procedure"):
        check("void main() { ghost(); }")


def test_call_arity_mismatch_rejected():
    with pytest.raises(ValidationError, match="expected"):
        check(
            """
            bool id(p) { return p; }
            void main() { decl a; a = id(1, 0); }
            """
        )


def test_call_result_arity_mismatch_rejected():
    with pytest.raises(ValidationError, match="binds"):
        check(
            """
            bool<2> pair(p) { return p, !p; }
            void main() { decl a; a = pair(1); }
            """
        )


def test_return_arity_mismatch_rejected():
    with pytest.raises(ValidationError, match="return carries"):
        check("bool f() { return; }")


def test_repeated_parallel_target_rejected():
    with pytest.raises(ValidationError, match="repeated target"):
        check("void main() { decl a; a, a = 1, 0; }")


def test_nondet_inside_operator_rejected():
    from repro.boolprog import BAnd, BAssign, BNondet, BProcedure, BProgram, BVar

    program = BProgram()
    program.add_procedure(
        BProcedure(
            "main",
            [],
            ["a"],
            0,
            [BAssign(["a"], [BAnd(BVar("a"), BNondet())])],
        )
    )
    with pytest.raises(ValidationError, match="nondeterministic"):
        validate_bool_program(program)


def test_duplicate_global_rejected():
    from repro.boolprog import BProgram, BProcedure

    program = BProgram()
    program.globals = ["g", "g"]
    program.add_procedure(BProcedure("main", [], [], 0, []))
    with pytest.raises(ValidationError, match="duplicate global"):
        validate_bool_program(program)


def test_collects_multiple_problems():
    try:
        check("void main() { decl a; a = b; goto nowhere; }")
    except ValidationError as error:
        assert len(error.problems) == 2
    else:
        pytest.fail("expected ValidationError")


# -- C2bp output is always well formed -------------------------------------------


@pytest.mark.parametrize(
    "study_name", ["partition", "listfind", "qsort"]
)
def test_c2bp_output_validates(study_name):
    from repro.programs import get_program

    study = get_program(study_name)
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    boolean_program = C2bp(program, predicates).run()
    assert validate_bool_program(boolean_program)


def test_instrumented_slam_program_validates():
    from repro.cfront import cast as C
    from repro.core import Predicate, PredicateSet
    from repro.slam import SafetySpec
    from repro.slam.instrument import STATE_VAR, instrument_program

    program = parse_c_program(
        "void main(void) { KeAcquireSpinLock(); KeReleaseSpinLock(); }"
    )
    spec = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
    instrument_program(program, spec)
    predicates = PredicateSet(
        [
            Predicate(C.BinOp("==", C.Id(STATE_VAR), C.IntLit(i)), None)
            for i in range(2)
        ]
    )
    boolean_program = C2bp(program, predicates).run()
    assert validate_bool_program(boolean_program)
