"""Meta-tests of the soundness replayer: it must *detect* deliberately
broken abstractions, not just pass correct ones."""

import pytest

from repro.boolprog import BAssign, BAssume, BConst, BNot, BUnknown, BVar
from repro.cfront import parse_c_program
from repro.core import C2bp, parse_predicate_file
from repro.core.replay import TraceReplayer


def build(source, predicate_text):
    program = parse_c_program(source)
    predicates = parse_predicate_file(predicate_text, program)
    tool = C2bp(program, predicates)
    return tool, tool.run()


def _first_assign(proc):
    for stmt in proc.body:
        if isinstance(stmt, BAssign):
            return stmt
    raise AssertionError("no assignment found")


def test_detects_flipped_transfer_function():
    tool, bp = build(
        "void main(void) { int x; x = 1; x = 2; }",
        "main\nx == 1, x == 2\n",
    )
    # Sabotage: make the x = 1 statement set {x==1} to FALSE.
    assign = _first_assign(bp.procedures["main"])
    index = assign.targets.index("x==1")
    assign.values[index] = BConst(False)
    report = TraceReplayer(tool, bp).run()
    assert not report.ok
    assert any(v.kind == "state-mismatch" for v in report.violations)


def test_detects_wrong_assume():
    tool, bp = build(
        "void main(int c) { if (c > 0) { c = 1; } }",
        "main\nc > 0\n",
    )
    # Sabotage: strengthen the then-branch assume to the negation.
    def flip(stmts):
        for stmt in stmts:
            if isinstance(stmt, BAssume) and stmt.cond == BVar("c>0"):
                stmt.cond = BNot(BVar("c>0"))
                return True
            for sub in stmt.substatements():
                if flip(sub):
                    return True
        return False

    assert flip(bp.procedures["main"].body)
    report = TraceReplayer(tool, bp, args=[5]).run()
    assert report.blocked is not None


def test_detects_missing_update():
    tool, bp = build(
        "void main(void) { int x; x = 0; x = 1; }",
        "main\nx == 1\n",
    )
    # Sabotage: drop the x = 1 update entirely (replace with identity of
    # the stale value).
    assigns = [s for s in bp.procedures["main"].body if isinstance(s, BAssign)]
    final = assigns[-1]
    final.values = [BVar("x==1")]  # keeps the old (false) value
    report = TraceReplayer(tool, bp).run()
    assert not report.ok


def test_unknown_everywhere_is_still_sound():
    # Replacing every assignment with unknown() loses precision but must
    # stay sound: the replayer accepts it (chooser supplies concrete
    # values).
    tool, bp = build(
        "void main(void) { int x; x = 0; x = 1; }",
        "main\nx == 1\n",
    )
    for stmt in bp.procedures["main"].body:
        if isinstance(stmt, BAssign):
            stmt.values = [BUnknown() for _ in stmt.values]
    report = TraceReplayer(tool, bp).run()
    assert report.ok


def test_report_counts_events():
    tool, bp = build(
        "void main(void) { int x; x = 0; x = 1; }",
        "main\nx == 1\n",
    )
    report = TraceReplayer(tool, bp).run()
    assert report.ok
    assert report.events_replayed >= 3  # entry + two assignments + ...


def test_replay_with_interprocedural_calls():
    tool, bp = build(
        """
        int twice(int a) { int r; r = a + a; return r; }
        void main(void) { int y; y = twice(3); }
        """,
        "twice\na == 3, r == 6\n\nmain\ny == 6\n",
    )
    report = TraceReplayer(tool, bp).run()
    assert report.ok, report
