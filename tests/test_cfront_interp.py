"""Tests for the concrete C interpreter (the soundness tests' substrate)."""

import pytest

from repro.cfront import parse_c_program
from repro.cfront.interp import (
    AssertionFailure,
    AssumeViolated,
    Cell,
    InterpError,
    Interpreter,
    StepLimitExceeded,
)


def run(source, entry="main", args=(), oracle=None, max_steps=100_000):
    program = parse_c_program(source)
    interp = Interpreter(program, extern_oracle=oracle, max_steps=max_steps)
    result, trace = interp.run(entry, list(args))
    return result, trace, interp


# -- arithmetic ------------------------------------------------------------


def test_basic_arithmetic():
    result, _, _ = run("int main(void) { return 2 + 3 * 4; }")
    assert result == 14


def test_division_truncates_toward_zero():
    assert run("int main(void) { return -7 / 2; }")[0] == -3
    assert run("int main(void) { return 7 / -2; }")[0] == -3
    assert run("int main(void) { return -7 %% 2; }".replace("%%", "%"))[0] == -1


def test_division_by_zero_raises():
    with pytest.raises(InterpError):
        run("int main(void) { int z; z = 0; return 1 / z; }")


def test_comparisons_produce_zero_one():
    assert run("int main(void) { return 3 < 5; }")[0] == 1
    assert run("int main(void) { return 3 > 5; }")[0] == 0


def test_short_circuit_avoids_division():
    result, _, _ = run(
        "int main(void) { int z; z = 0; return z != 0 && 1 / z > 0; }"
    )
    assert result == 0


def test_unbounded_integers():
    # The logical memory model: no overflow at 2^31.
    result, _, _ = run(
        """
        int main(void) {
            int x, i;
            x = 1;
            for (i = 0; i < 40; i++) { x = x * 2; }
            return x;
        }
        """
    )
    assert result == 2**40


# -- control flow --------------------------------------------------------------


def test_factorial_via_recursion():
    result, _, _ = run(
        """
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int main(void) { return fact(6); }
        """
    )
    assert result == 720


def test_mutual_recursion():
    result, _, _ = run(
        """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        int main(void) { return is_even(10); }
        """
    )
    assert result == 1


def test_goto_loop():
    result, _, _ = run(
        """
        int main(void) {
            int i;
            i = 0;
        again:
            i = i + 1;
            if (i < 5) { goto again; }
            return i;
        }
        """
    )
    assert result == 5


def test_step_limit():
    with pytest.raises(StepLimitExceeded):
        run("void main(void) { while (1) { } }", max_steps=100)


# -- memory ------------------------------------------------------------------


def test_pointers_read_write():
    result, _, _ = run(
        """
        int main(void) {
            int x;
            int *p;
            x = 1;
            p = &x;
            *p = 42;
            return x;
        }
        """
    )
    assert result == 42


def test_null_deref_raises():
    with pytest.raises(InterpError):
        run("int main(void) { int *p; p = NULL; return *p; }")


def test_struct_fields():
    result, _, _ = run(
        """
        struct point { int x; int y; };
        int main(void) {
            struct point pt;
            pt.x = 3;
            pt.y = 4;
            return pt.x * pt.x + pt.y * pt.y;
        }
        """
    )
    assert result == 25


def test_struct_through_pointer():
    result, _, _ = run(
        """
        struct point { int x; int y; };
        int main(void) {
            struct point pt;
            struct point *p;
            p = &pt;
            p->x = 7;
            return pt.x;
        }
        """
    )
    assert result == 7


def test_arrays():
    result, _, _ = run(
        """
        int main(void) {
            int a[10];
            int i, sum;
            for (i = 0; i < 10; i++) { a[i] = i; }
            sum = 0;
            for (i = 0; i < 10; i++) { sum = sum + a[i]; }
            return sum;
        }
        """
    )
    assert result == 45


def test_pointer_equality_is_identity():
    result, _, _ = run(
        """
        int main(void) {
            int x, y;
            int *p, *q;
            p = &x;
            q = &y;
            if (p == q) { return 1; }
            q = &x;
            if (p == q) { return 2; }
            return 0;
        }
        """
    )
    assert result == 2


def test_global_initializers():
    result, _, _ = run("int g = 41; int main(void) { return g + 1; }")
    assert result == 42


def test_linked_list_helpers():
    program = parse_c_program(
        "struct cell { int val; struct cell *next; }; void main(void) { }"
    )
    interp = Interpreter(program)
    head = interp.make_list([1, 2, 3])
    assert interp.read_list(head) == [1, 2, 3]
    assert interp.read_list(0) == []


# -- events ---------------------------------------------------------------------


def test_assert_failure_carries_trace():
    with pytest.raises(AssertionFailure) as info:
        run("void main(void) { int x; x = 1; assert(x == 2); }")
    assert info.value.trace  # statements executed up to the failure


def test_assume_violation():
    with pytest.raises(AssumeViolated):
        run("void main(void) { int x; x = 1; assume(x == 2); }")


def test_extern_oracle_supplies_values():
    calls = []

    def oracle(name, args):
        calls.append((name, tuple(args)))
        return 13

    result, _, _ = run(
        "int main(void) { int x; x = probe(1, 2); return x; }", oracle=oracle
    )
    assert result == 13
    assert calls == [("probe", (1, 2))]


def test_unknown_expression_uses_oracle():
    result, _, _ = run(
        "int main(void) { int x; x = *; return x; }", oracle=lambda n, a: -9
    )
    assert result == -9


def test_trace_records_branches():
    _, trace, _ = run("void main(int c) { if (c > 0) { c = 1; } }", args=[5])
    branches = [e for e in trace if e.kind == "branch"]
    assert branches and branches[0].outcome is True


def test_call_by_value_semantics():
    result, _, _ = run(
        """
        void bump(int x) { x = x + 1; }
        int main(void) { int y; y = 5; bump(y); return y; }
        """
    )
    assert result == 5
