"""Tests for the content-addressed persistent store and its key scheme.

Covers the record format (self-verification, corrupt-record handling as
an injected-bug meta-test), the store's LRU byte cap and read-only mode,
and — with hypothesis — the process-stability of the canonical key
texts: alpha-renaming generated temps, reordering or duplicating
antecedents, and whitespace must not change a key, while semantically
different queries must not collide.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import parse_expression
from repro.serve import (
    PersistentStore,
    StoreRecordError,
    canonical_query_text,
    enforce_store_key,
    options_fingerprint,
    query_store_key,
    statement_store_key,
)
from repro.serve.keys import SEMANTIC_OPTION_FIELDS
from repro.serve.store import decode_record, encode_record
from repro.core import C2bpOptions


# -- record format ---------------------------------------------------------


def test_record_roundtrip():
    blob = encode_record("prover|v1|k", {"answer": [1, 2, 3]})
    key, value = decode_record(blob)
    assert key == "prover|v1|k"
    assert value == {"answer": [1, 2, 3]}


def test_record_rejects_flipped_bit():
    blob = bytearray(encode_record("prover|v1|k", "value"))
    blob[-1] ^= 0xFF
    with pytest.raises(StoreRecordError):
        decode_record(bytes(blob))


def test_record_rejects_bad_magic_and_version():
    blob = encode_record("k", "v")
    with pytest.raises(StoreRecordError):
        decode_record(b"XXXX" + blob[4:])
    with pytest.raises(StoreRecordError):
        decode_record(blob[:4] + bytes([99]) + blob[5:])


# -- store behaviour -------------------------------------------------------


def test_store_roundtrip_and_counters(tmp_path):
    store = PersistentStore(str(tmp_path / "cache"))
    hit, _ = store.get("prover|v1|q")
    assert not hit and store.misses == 1
    assert store.put("prover|v1|q", ("valid", True))
    hit, value = store.get("prover|v1|q")
    assert hit and value == ("valid", True)
    assert store.hits == 1 and store.writes == 1
    assert store.counters_with_namespaces()["namespaces"]["prover"] == {
        "hits": 1,
        "misses": 1,
    }


def test_store_first_write_wins(tmp_path):
    store = PersistentStore(str(tmp_path))
    assert store.put("k", "first")
    assert not store.put("k", "second")
    assert store.write_skips == 1
    assert store.get("k") == (True, "first")
    assert store.put("k", "second", overwrite=True)
    assert store.get("k") == (True, "second")


def test_corrupt_record_is_a_counted_miss(tmp_path):
    """Injected-bug meta-test: flip bits in a stored record on disk; the
    store must detect the checksum mismatch, delete the record, count it
    under ``cache_corrupt_records``, and answer a miss — and a subsequent
    put/get cycle must recover."""
    store = PersistentStore(str(tmp_path))
    store.put("prover|v1|q", "answer")
    (record,) = [
        os.path.join(dirpath, name)
        for dirpath, _, names in os.walk(str(tmp_path))
        for name in names
        if name.endswith(".rec")
    ]
    blob = bytearray(open(record, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    with open(record, "wb") as handle:
        handle.write(bytes(blob))
    hit, _ = store.get("prover|v1|q")
    assert not hit
    assert store.cache_corrupt_records == 1
    assert not os.path.exists(record), "corrupt record must be deleted"
    store.put("prover|v1|q", "answer")
    assert store.get("prover|v1|q") == (True, "answer")


def test_wrong_key_under_right_digest_is_corrupt(tmp_path):
    """A record whose stored key text differs from the probed key (as a
    digest collision would produce) is treated as corrupt, not served."""
    store = PersistentStore(str(tmp_path))
    store.put("a", "value-for-a")
    path = store._path("a")
    with open(path, "wb") as handle:
        handle.write(encode_record("b", "value-for-b"))
    hit, _ = store.get("a")
    assert not hit and store.cache_corrupt_records == 1


def test_lru_eviction_respects_cap_and_recency(tmp_path):
    store = PersistentStore(str(tmp_path), max_bytes=3000)
    payload = "x" * 150  # ~200 bytes per record
    for index in range(8):
        store.put("k%d" % index, payload)
    os.utime(store._path("k0"))  # refresh k0: most recently used
    for index in range(8, 16):
        store.put("k%d" % index, payload)
    assert store.evictions > 0
    assert store.total_bytes() <= 3000
    assert store.contains("k0"), "recently-touched record must survive"
    assert not store.contains("k1"), "oldest untouched record must be evicted"


def test_readonly_store_skips_writes(tmp_path):
    writer = PersistentStore(str(tmp_path))
    writer.put("k", "v")
    reader = PersistentStore(str(tmp_path), readonly=True)
    assert reader.get("k") == (True, "v")
    assert not reader.put("k2", "v2")
    assert reader.write_skips == 1
    assert not writer.contains("k2")


def test_merge_counters_folds_worker_deltas(tmp_path):
    store = PersistentStore(str(tmp_path))
    store.put("prover|v1|q", "a")
    store.get("prover|v1|q")
    store.merge_counters(
        {"hits": 3, "misses": 2, "namespaces": {"prover": {"hits": 3, "misses": 2}}}
    )
    assert store.hits == 4 and store.misses == 2
    assert store.counters_with_namespaces()["namespaces"]["prover"] == {
        "hits": 4,
        "misses": 2,
    }


# -- canonical key stability -----------------------------------------------

_TEMPLATES = (
    "{t0} == x",
    "{t0} > {t1}",
    "x + {t1} <= 3",
    "{t0} != 0",
    "y < {t1} + {t0}",
    "x == 1",
    "{t1} == {t0} + x",
)


def _instantiate(templates, first, second):
    return [
        parse_expression(t.format(t0="__t%d" % first, t1="__t%d" % second))
        for t in templates
    ]


@st.composite
def _query(draw):
    antecedents = draw(
        st.lists(st.sampled_from(_TEMPLATES), min_size=1, max_size=4)
    )
    goal = draw(st.sampled_from(_TEMPLATES))
    return goal, antecedents


@st.composite
def _temp_pair(draw):
    first = draw(st.integers(min_value=1, max_value=40))
    second = draw(
        st.integers(min_value=1, max_value=40).filter(lambda n: n != first)
    )
    return first, second


@settings(max_examples=60, deadline=None)
@given(_query(), _temp_pair(), _temp_pair(), st.randoms())
def test_key_stable_under_temp_renaming_and_reordering(query, left, right, rng):
    """Renaming the generated temps injectively and permuting/duplicating
    the antecedent set must not change the canonical key text."""
    goal, antecedents = query
    base = canonical_query_text(
        "implies",
        _instantiate(antecedents, *left),
        consequent=parse_expression(goal.format(t0="__t%d" % left[0], t1="__t%d" % left[1])),
    )
    shuffled = list(antecedents)
    rng.shuffle(shuffled)
    shuffled.append(shuffled[0])  # duplicates fold into the set
    renamed = canonical_query_text(
        "implies",
        _instantiate(shuffled, *right),
        consequent=parse_expression(goal.format(t0="__t%d" % right[0], t1="__t%d" % right[1])),
    )
    assert base == renamed


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=1000))
def test_distinct_constants_never_collide(a, b):
    left = canonical_query_text("implies", [parse_expression("x == %d" % a)])
    right = canonical_query_text("implies", [parse_expression("x == %d" % b)])
    assert (left == right) == (a == b)


def test_key_ignores_whitespace_via_pretty_printer():
    dense = canonical_query_text("implies", [parse_expression("x+1==y")])
    spaced = canonical_query_text("implies", [parse_expression("x + 1 == y")])
    assert dense == spaced


def test_canonical_guard_falls_back_to_raw_text():
    # A real __c identifier disables alpha-normalization (injectivity
    # guard): the key still exists, just without temp renaming.
    text = canonical_query_text(
        "implies", [parse_expression("__c0 == __t1")]
    )
    assert "__t1" in text


def test_store_keys_are_namespaced_and_versioned():
    key = query_store_key(("implies", frozenset([parse_expression("x == 1")]), None))
    assert key.startswith("prover|v1|")
    options = C2bpOptions()
    stmt = statement_store_key(("sid", 1), options)
    assert stmt.startswith("c2bp-stmt|v1|")
    enforce = enforce_store_key(("proc", ()), options)
    assert enforce.startswith("c2bp-enforce|v1|")


def test_options_fingerprint_tracks_semantic_fields_only():
    base = C2bpOptions()
    assert options_fingerprint(base) == options_fingerprint(
        base.copy(strengthen="cubes", jobs=4, cache_dir="/elsewhere")
    )
    for field in SEMANTIC_OPTION_FIELDS:
        current = getattr(base, field)
        if isinstance(current, bool):
            changed = base.copy(**{field: not current})
        else:
            changed = base.copy(**{field: (current or 0) + 1})
        assert options_fingerprint(changed) != options_fingerprint(base), field


def test_keys_stable_across_hash_seeds():
    """The canonical texts must not depend on PYTHONHASHSEED — compute
    them in two subprocesses with different seeds and compare."""
    script = (
        "from repro.cfront import parse_expression\n"
        "from repro.serve import canonical_query_text\n"
        "exprs = [parse_expression(t) for t in ('__t3 == x', 'y < __t7 + __t3', 'x != 0')]\n"
        "print(canonical_query_text('implies', exprs, parse_expression('__t7 > 1')))\n"
    )
    outputs = set()
    for seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        result = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True,
            text=True, check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1
