"""The strengthening-strategy layer and the persistent worker pool.

Four groups of guarantees:

- **Strategy differential** — :class:`AllSatStrategy` classifies exactly
  the cube sets :class:`CubeEnumerationStrategy` does, on randomized
  instances (hypothesis) and on real corpus programs, and the printed
  boolean programs are byte-identical;
- **Core policy** — sessions opened with ``want_cores=False`` (the
  fresh-baseline throwaway path) skip unsat-core mapping entirely;
- **Pool lifecycle** — the persistent :class:`StatementPool` shuts down
  deterministically (no zombie processes after ``close()``), survives
  reuse across runs on one context, and re-raises a failing worker
  statement with the original traceback;
- **Oracle coverage** — an injected catalog bug is caught by the fuzz
  oracle as ``strengthen-divergence``.
"""

import io
import multiprocessing

import pytest
from hypothesis import given, settings, strategies as st

from repro import C2bp, parse_c_program, parse_predicate_file
from repro.boolprog.printer import print_bool_program
from repro.cfront import parse_expression
from repro.core import C2bpOptions
from repro.core import abstractor as abstractor_module
from repro.core.cubes import (
    AllSatStrategy,
    CubeEnumerationStrategy,
    CubeSearch,
    make_strategy,
)
from repro.core.pool import WorkerError
from repro.engine import EngineContext
from repro.fuzz.gen import ProgramGenerator
from repro.fuzz.oracle import KIND_STRENGTHEN, SoundnessOracle
from repro.programs import get_program
from repro.prover import Prover
from repro.prover import allsat as allsat_module


class _Cand:
    def __init__(self, text):
        self.expr = parse_expression(text)
        self.name = text.replace(" ", "")


def _search(strengthen, **overrides):
    options = C2bpOptions(
        syntactic_heuristics=False, strengthen=strengthen, **overrides
    )
    return CubeSearch(Prover(), options)


# -- strategy selection --------------------------------------------------------------


def test_make_strategy_resolution():
    assert isinstance(make_strategy(None), AllSatStrategy)
    assert isinstance(make_strategy("allsat"), AllSatStrategy)
    strategy = make_strategy("cubes")
    assert isinstance(strategy, CubeEnumerationStrategy)
    assert not isinstance(strategy, AllSatStrategy)
    assert make_strategy(strategy) is strategy
    with pytest.raises(ValueError):
        make_strategy("nope")


def test_default_options_select_allsat():
    search = CubeSearch(Prover(), C2bpOptions())
    assert isinstance(search.strategy, AllSatStrategy)


# -- differential: allsat vs cubes ----------------------------------------------------


_VARS = ("x", "y")


@st.composite
def _atom(draw):
    var = draw(st.sampled_from(_VARS))
    op = draw(st.sampled_from(["<", "<=", "==", ">", ">=", "!="]))
    constant = draw(st.integers(min_value=-3, max_value=3))
    if draw(st.booleans()):
        return "%s %s %d" % (var, op, constant)
    return "x + y %s %d" % (op, constant)


@st.composite
def _instance(draw):
    candidates = draw(st.lists(_atom(), min_size=1, max_size=3, unique=True))
    goal = draw(_atom())
    return candidates, goal


@settings(max_examples=40, deadline=None)
@given(_instance())
def test_allsat_matches_cubes_on_random_instances(instance):
    candidate_texts, goal_text = instance
    candidates = [_Cand(t) for t in candidate_texts]
    goal = parse_expression(goal_text)
    assert _search("allsat").implicant_cubes(candidates, goal) == _search(
        "cubes"
    ).implicant_cubes(candidates, goal)


@settings(max_examples=25, deadline=None)
@given(_instance())
def test_allsat_matches_cubes_inconsistent(instance):
    candidate_texts, _ = instance
    candidates = [_Cand(t) for t in candidate_texts]
    assert _search("allsat").inconsistent_cubes(candidates, 3) == _search(
        "cubes"
    ).inconsistent_cubes(candidates, 3)


@pytest.mark.parametrize("name", ["partition", "listfind"])
def test_allsat_bool_program_byte_identical(name):
    study = get_program(name)
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    texts = {
        label: print_bool_program(
            C2bp(
                program,
                predicates,
                options=C2bpOptions(strengthen=label),
            ).run()
        )
        for label in ("allsat", "cubes")
    }
    assert texts["allsat"] == texts["cubes"]


# -- the want_cores policy ------------------------------------------------------------


def test_want_cores_false_skips_core_mapping():
    prover = Prover()
    session = prover.cube_session(
        [parse_expression("x < 5"), parse_expression("x == 2")],
        parse_expression("x < 10"),
        want_cores=False,
    )
    result, core = session.implies_cube(((0, True), (1, True)))
    assert result is True
    assert core is None
    assert prover.stats.core_shrinks == 0


def test_want_cores_default_still_shrinks():
    prover = Prover()
    session = prover.cube_session(
        [parse_expression("x < 5"), parse_expression("x == 2")],
        parse_expression("x < 10"),
    )
    result, core = session.implies_cube(((0, True), (1, True)))
    assert result is True
    assert core in (((0, True),), ((1, True),))
    assert prover.stats.core_shrinks == 1


# -- pool lifecycle -------------------------------------------------------------------


def _study_inputs(name):
    study = get_program(name)
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    return program, predicates


def test_pool_persists_across_runs_and_closes_clean():
    program, predicates = _study_inputs("partition")
    serial = print_bool_program(
        C2bp(program, predicates, options=C2bpOptions(jobs=1)).run()
    )
    with EngineContext(options=C2bpOptions(jobs=2)) as context:
        first = print_bool_program(C2bp(program, predicates, context=context).run())
        pool = context._worker_pool
        assert pool is not None
        second = print_bool_program(C2bp(program, predicates, context=context).run())
        # Same long-lived pool served both runs.
        assert context._worker_pool is pool
        assert first == serial and second == serial
    assert context._worker_pool is None
    for process in multiprocessing.active_children():
        process.join(timeout=5)
    assert multiprocessing.active_children() == []


def test_pool_closed_after_private_context_run():
    program, predicates = _study_inputs("partition")
    tool = C2bp(program, predicates, options=C2bpOptions(jobs=2))
    tool.run()
    # The run created (and must have closed) its own pool.
    assert tool.context._worker_pool is None
    for process in multiprocessing.active_children():
        process.join(timeout=5)
    assert multiprocessing.active_children() == []


def test_failing_worker_statement_surfaces_traceback(monkeypatch):
    program, predicates = _study_inputs("partition")

    def boom(self, stmt):
        raise RuntimeError("injected worker failure")

    # The pool forks after the patch, so workers inherit it.
    monkeypatch.setattr(
        abstractor_module._ProcedureAbstractor, "_abstract_stmt", boom
    )
    with EngineContext(options=C2bpOptions(jobs=2)) as context:
        with pytest.raises(WorkerError) as excinfo:
            C2bp(program, predicates, context=context).run()
        assert "injected worker failure" in str(excinfo.value)
        assert "RuntimeError" in excinfo.value.remote_traceback
    for process in multiprocessing.active_children():
        process.join(timeout=5)
    assert multiprocessing.active_children() == []


# -- oracle coverage ------------------------------------------------------------------


def test_oracle_catches_injected_catalog_bug(monkeypatch):
    """A catalog that misreports coverage flips SAT answers; the oracle
    must flag the divergence with the strengthen-specific kind."""

    def lying_covers(self, cube):
        self.hits += 1
        return True

    monkeypatch.setattr(allsat_module.ModelCatalog, "covers", lying_covers)
    oracle = SoundnessOracle()
    for seed in range(8):
        case = ProgramGenerator("strengthen").generate(seed)
        report = oracle.check(case, check_jobs=False)
        if report.kind == KIND_STRENGTHEN:
            return
    raise AssertionError("no generated case exposed the injected catalog bug")


# -- CLI flag -------------------------------------------------------------------------


def test_cli_strengthen_flag(tmp_path):
    from repro.cli import main

    study = get_program("partition")
    c_path = tmp_path / "p.c"
    p_path = tmp_path / "p.preds"
    c_path.write_text(study.source)
    p_path.write_text(study.predicate_text)
    outputs = {}
    for flag in ("allsat", "cubes"):
        out = io.StringIO()
        code = main(
            [
                "abstract",
                str(c_path),
                str(p_path),
                "--strengthen",
                flag,
            ],
            out=out,
        )
        assert code == 0
        # Strip the trailing stats comment (timings differ run to run).
        outputs[flag] = out.getvalue().rsplit("//", 1)[0]
    assert outputs["allsat"] == outputs["cubes"]
