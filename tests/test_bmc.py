"""Bit-precise bounded model checking: the encoder against the concrete
interpreter, the unwinding discipline, the four pipeline integrations
(CLI verdicts, Newton confirmation, CEGAR fallback, fuzz oracle), and
the meta-test that the ``bmc-divergence`` oracle catches an injected
encoder fault.

The differential backbone: :func:`repro.bmc.run_bmc` and
``Interpreter(wrap_width=16)`` implement the *same* fixed-width
two's-complement semantics by independent constructions (bit-blasted SAT
circuit vs. direct evaluation), so a BMC counterexample must replay
concretely and a complete BMC proof must never be contradicted by an
enumerated concrete run.
"""

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

import repro.bmc.unroll as unroll_module
from repro.bmc import (
    VERDICT_SAFE,
    VERDICT_SAFE_UP_TO_K,
    VERDICT_UNSAFE,
    VERDICT_UNSUPPORTED,
    confirm_path,
    replay_witness,
    run_bmc,
)
from repro.bmc.driver import REPLAY_ASSERT_FAILED, REPLAY_COMPLETED
from repro.cfront import parse_c_program
from repro.cfront.interp import AssertionFailure, InterpError, Interpreter
from repro.core import PredicateSet
from repro.core.options import C2bpOptions
from repro.engine import EngineContext
from repro.fuzz import KIND_BMC, FuzzSession, ProgramGenerator, SoundnessOracle
from repro.newton import CPathStep, analyze_path
from repro.slam.cegar import _bounded_fallback

pytestmark = pytest.mark.bmc


def bmc(source, entry="main", depth=16, width=16):
    return run_bmc(parse_c_program(source), entry=entry, depth=depth, width=width)


def replay(source, result, entry="main", width=16):
    return replay_witness(parse_c_program(source), entry, result.witness, width=width)


# -- width semantics ----------------------------------------------------------------


def test_overflow_is_unsafe_at_the_bounded_width():
    source = "void main(int n) { assert(n + 1 > n); }"
    result = bmc(source, width=16)
    assert result.verdict == VERDICT_UNSAFE
    # Only INT16_MAX wraps to INT16_MIN under + 1.
    assert result.witness.entry_args() == [32767]
    assert replay(source, result, width=16) == REPLAY_ASSERT_FAILED


def test_wrap_constant_is_width_dependent():
    source = "void main(void) { assert(32767 + 1 == -32768); }"
    assert bmc(source, width=16).verdict == VERDICT_SAFE
    assert bmc(source, width=32).verdict == VERDICT_UNSAFE


def test_division_truncates_toward_zero():
    source = """
    void main(void) {
        assert((-7) / 2 == -3);
        assert((-7) % 2 == -1);
        assert(7 / -2 == -3);
    }
    """
    assert bmc(source).verdict == VERDICT_SAFE


def test_shift_semantics():
    source = """
    void main(void) {
        assert((1 << 15) == -32768);
        assert((-4) >> 1 == -2);
        assert((-32768) >> 15 == -1);
    }
    """
    assert bmc(source, width=16).verdict == VERDICT_SAFE


def test_bitwise_witness():
    source = "void main(int n) { assert((n | 1) != 4097); }"
    result = bmc(source)
    assert result.verdict == VERDICT_UNSAFE
    assert result.witness.entry_args()[0] in (4096, 4097)
    assert replay(source, result) == REPLAY_ASSERT_FAILED


# -- unwinding ----------------------------------------------------------------------

LOOP = """
void main(void) {
    int i;
    i = 0;
    while (i < 3) {
        i = i + 1;
    }
    assert(i == 3);
}
"""


def test_loop_complete_at_sufficient_depth():
    result = bmc(LOOP, depth=3)
    assert result.verdict == VERDICT_SAFE
    assert result.complete
    assert result.cuts == 0


def test_loop_bounded_below_trip_count():
    result = bmc(LOOP, depth=2)
    assert result.verdict == VERDICT_SAFE_UP_TO_K
    assert not result.complete
    assert result.cuts > 0


def test_input_bounded_loop_is_never_complete():
    source = """
    void main(int n) {
        int i;
        i = 0;
        while (i < n) {
            i = i + 1;
        }
        assert(i >= 0);
    }
    """
    assert bmc(source, depth=8).verdict == VERDICT_SAFE_UP_TO_K


def test_goto_loop_counts_against_the_bound():
    source = """
    void main(void) {
        int i;
        i = 0;
      again:
        i = i + 1;
        if (i < 4) { goto again; }
        assert(i == 4);
    }
    """
    assert bmc(source, depth=4).verdict == VERDICT_SAFE
    assert bmc(source, depth=2).verdict == VERDICT_SAFE_UP_TO_K


def test_recursion_is_cut_at_depth():
    source = """
    int down(int n) {
        if (n <= 0) { return 0; }
        return down(n - 1);
    }
    void main(void) {
        assert(down(5) == 0);
    }
    """
    assert bmc(source, depth=6).verdict == VERDICT_SAFE
    assert bmc(source, depth=2).verdict == VERDICT_SAFE_UP_TO_K


# -- witnesses ----------------------------------------------------------------------


def test_witness_param_value():
    source = "void main(int n) { assert(n != 5); }"
    result = bmc(source)
    assert result.verdict == VERDICT_UNSAFE
    assert result.witness.entry_args() == [5]
    assert result.witness.site is not None
    assert replay(source, result) == REPLAY_ASSERT_FAILED


def test_witness_extern_consumption_order():
    source = """
    void main(void) {
        int x, y;
        x = *;
        y = *;
        assert(x - y != 7);
    }
    """
    result = bmc(source)
    assert result.verdict == VERDICT_UNSAFE
    x, y = result.witness.externs
    assert (x - y) & 0xFFFF == 7
    assert replay(source, result) == REPLAY_ASSERT_FAILED


def test_witness_input_array():
    source = """
    void main(int a[], int n) {
        if (n == 2) {
            assert(a[0] + a[1] != 9);
        }
    }
    """
    result = bmc(source)
    assert result.verdict == VERDICT_UNSAFE
    cells, n = result.witness.entry_args()
    assert n == 2
    assert (cells.get(0, 0) + cells.get(1, 0)) & 0xFFFF == 9
    assert replay(source, result) == REPLAY_ASSERT_FAILED


def test_pointer_and_call_program():
    source = """
    int g;
    void bump(int *p, int by) { *p = *p + by; }
    void main(int n) {
        g = 1;
        bump(&g, n);
        assert(g != 42);
    }
    """
    result = bmc(source)
    assert result.verdict == VERDICT_UNSAFE
    assert result.witness.entry_args() == [41]
    assert replay(source, result) == REPLAY_ASSERT_FAILED


def test_global_array_writes():
    source = """
    int buffer[4];
    void main(int n) {
        if (n >= 0) {
            if (n < 4) {
                buffer[n] = 1;
                assert(buffer[n] == 1);
            }
        }
    }
    """
    assert bmc(source).verdict == VERDICT_SAFE


# -- the supported fragment ---------------------------------------------------------


def test_structs_are_unsupported():
    source = """
    struct pair { int a; int b; };
    void main(void) {
        struct pair p;
        p.a = 1;
        assert(p.a == 1);
    }
    """
    result = bmc(source)
    assert result.verdict == VERDICT_UNSUPPORTED
    assert result.reason


def test_scalar_deref_of_entry_pointer_is_unsupported():
    result = bmc("void main(int *p) { assert(*p == 0); }")
    assert result.verdict == VERDICT_UNSUPPORTED


# -- differential against the wrapping interpreter ----------------------------------

_NAMES = st.sampled_from(("n", "m"))
_CONSTS = st.integers(-8, 8).map(str) | st.sampled_from(("32767", "-32768"))
_EXPRS = st.recursive(
    _NAMES | _CONSTS,
    lambda children: st.tuples(
        st.sampled_from(("+", "-", "*", "&", "|", "^")), children, children
    ).map(lambda t: "(%s %s %s)" % (t[1], t[0], t[2])),
    max_leaves=5,
)

_TEMPLATE = """
void main(int n, int m) {
    int s, i;
    s = %(init)s;
    i = 0;
    while (i < %(trips)d) {
        s = (s + %(step)s);
        i = (i + 1);
    }
    if (%(cond)s) {
        s = (s - m);
    }
    assert(s != %(target)d);
}
"""


@settings(max_examples=30, deadline=None)
@given(
    init=_EXPRS,
    step=_EXPRS,
    trips=st.integers(0, 3),
    cond=st.sampled_from(("(n < m)", "(s > 0)", "((n & 1) == 1)")),
    target=st.integers(-3, 3),
)
def test_bmc_agrees_with_wrapping_interpreter(init, step, trips, cond, target):
    """Both directions of the differential: a BMC counterexample must
    replay to the same failing assert, and a complete BMC proof must not
    be contradicted by any enumerated concrete input."""
    source = _TEMPLATE % {
        "init": init,
        "step": step,
        "trips": trips,
        "cond": cond,
        "target": target,
    }
    program = parse_c_program(source)
    result = run_bmc(program, depth=6, width=16)
    # The loop bound is a constant <= 3, so depth 6 always completes.
    assert result.complete, result.verdict
    if result.verdict == VERDICT_UNSAFE:
        assert (
            replay_witness(program, "main", result.witness, width=16)
            == REPLAY_ASSERT_FAILED
        )
    concrete_failures = 0
    for n in range(-3, 4):
        for m in range(-3, 4):
            interp = Interpreter(program, max_steps=10_000, wrap_width=16)
            try:
                interp.run("main", [n, m])
            except AssertionFailure:
                concrete_failures += 1
    if concrete_failures:
        assert result.verdict == VERDICT_UNSAFE


# -- Newton confirmation ------------------------------------------------------------


def _branch_then_assert(source):
    program = parse_c_program(source)
    branch = program.functions["main"].body[0]
    return program, [
        CPathStep("main", branch, "branch", True),
        CPathStep("main", branch.then_body[0], "stmt"),
    ]


def test_newton_confirm_attaches_concrete_witness():
    program, steps = _branch_then_assert(
        "void main(int n) { if (n > 5) { assert(0); } }"
    )
    with EngineContext(options=C2bpOptions(bmc_confirm=True, bmc_width=16)) as ctx:
        result = analyze_path(program, steps, context=ctx)
    assert result.feasible
    assert result.bmc_checked
    assert not result.bmc_refuted
    assert result.witness.args_by_name["n"] > 5


def test_newton_confirm_flags_width_refutation():
    # Feasible over mathematical integers, impossible in 16 bits: the
    # verdict stands (never refute a real error) but the disagreement
    # is flagged for the user.
    program, steps = _branch_then_assert(
        "void main(int n) { if (n > 32767) { assert(0); } }"
    )
    with EngineContext(options=C2bpOptions(bmc_confirm=True, bmc_width=16)) as ctx:
        result = analyze_path(program, steps, context=ctx)
    assert result.feasible
    assert result.bmc_checked
    assert result.bmc_refuted
    assert result.witness is None


def test_newton_confirm_is_off_by_default():
    program, steps = _branch_then_assert(
        "void main(int n) { if (n > 5) { assert(0); } }"
    )
    with EngineContext(options=C2bpOptions()) as ctx:
        result = analyze_path(program, steps, context=ctx)
    assert result.feasible
    assert not result.bmc_checked


def test_confirm_path_refutes_unsatisfiable_prefix():
    source = "void main(int n) { if (n > 32767) { assert(0); } }"
    program, steps = _branch_then_assert(source)
    outcome = confirm_path(program, steps, width=16)
    assert outcome.checked
    assert outcome.refuted
    assert not outcome.confirmed


def test_confirm_path_validates_witness_by_replay():
    source = "void main(int n) { if (n == 100) { assert(0); } }"
    program, steps = _branch_then_assert(source)
    outcome = confirm_path(program, steps, width=16)
    assert outcome.checked
    assert outcome.confirmed
    assert outcome.witness.args_by_name["n"] == 100
    assert outcome.replay == REPLAY_ASSERT_FAILED


# -- CEGAR bounded fallback ---------------------------------------------------------


def test_cegar_fallback_upgrades_on_real_failure():
    program = parse_c_program("void main(int n) { assert(n != 5); }")
    with EngineContext(options=C2bpOptions()) as ctx:
        result = _bounded_fallback(program, "main", PredicateSet(), ctx, 3, None)
    assert result.verdict == "unsafe"
    assert result.bounded_verdict == VERDICT_UNSAFE
    assert result.bmc_depth == 16


def test_cegar_fallback_keeps_wrap_only_failures_unknown():
    # BMC finds the 16-bit overflow, but the unbounded model the pipeline
    # reasons in has no such failure: the verdict must stay unknown.
    program = parse_c_program("void main(int n) { assert(n + 1 > n); }")
    with EngineContext(options=C2bpOptions()) as ctx:
        result = _bounded_fallback(program, "main", PredicateSet(), ctx, 3, None)
    assert result.verdict == "unknown"
    assert result.bounded_verdict == VERDICT_UNSAFE


def test_cegar_fallback_respects_opt_out():
    program = parse_c_program("void main(int n) { assert(n != 5); }")
    with EngineContext(options=C2bpOptions(bmc_fallback=False)) as ctx:
        result = _bounded_fallback(program, "main", PredicateSet(), ctx, 3, None)
    assert result.verdict == "unknown"
    assert result.bounded_verdict is None


# -- the CLI ------------------------------------------------------------------------


def _run_cli(argv):
    from repro.cli import main

    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_cli_bmc_unsafe_exit_code(tmp_path):
    path = tmp_path / "unsafe.c"
    path.write_text("void main(int n) { assert(n != 5); }\n")
    code, text = _run_cli(["bmc", str(path), "--width", "16"])
    assert code == 1
    assert "verdict: unsafe" in text
    assert "witness args: [5]" in text
    assert "witness replay: assert-failed" in text


def test_cli_bmc_safe_exit_code(tmp_path):
    path = tmp_path / "safe.c"
    path.write_text("void main(int n) { assert(n == n); }\n")
    code, text = _run_cli(["bmc", str(path), "--width", "16"])
    assert code == 0
    assert "verdict: safe" in text


def test_cli_bmc_unsupported_exit_code(tmp_path):
    path = tmp_path / "structs.c"
    path.write_text(
        "struct s { int a; };\n"
        "void main(void) { struct s v; v.a = 1; assert(v.a == 1); }\n"
    )
    code, text = _run_cli(["bmc", str(path)])
    assert code == 2
    assert "verdict: unsupported" in text


def test_cli_bmc_depth_and_stats_json(tmp_path):
    path = tmp_path / "loop.c"
    path.write_text(LOOP)
    stats_path = tmp_path / "stats.json"
    code, text = _run_cli(
        ["bmc", str(path), "--depth", "2", "--stats-json", str(stats_path)]
    )
    assert code == 0
    assert "safe-up-to-k" in text
    payload = json.loads(stats_path.read_text())
    assert payload["bmc"]["runs"] == 1
    assert payload["bmc"]["bounded"] == 1


# -- the bmc-divergence fuzz oracle -------------------------------------------------


def test_oracle_runs_bmc_differential():
    case = ProgramGenerator("bmc-oracle").generate(0)
    report = SoundnessOracle().check(case, check_jobs=False)
    assert report.ok, report.detail
    assert report.bmc_checked


def test_fuzzer_finds_and_shrinks_injected_encoder_fault(monkeypatch, tmp_path):
    """Breaking the phi-merge (keep only the first incoming edge's value
    at every join) must surface as a ``bmc-divergence`` through the real
    ``repro fuzz`` machinery and shrink to a checked-in-sized reproducer.
    Seed 2, case 36 is the known loop+join program whose broken
    encoding yields a bogus counterexample."""
    monkeypatch.setattr(
        unroll_module, "_merge_values", lambda encoder, entries: entries[0][1]
    )
    session = FuzzSession(
        seed=2,
        jobs_stride=0,
        shrink=True,
        corpus_dir=str(tmp_path),
        max_shrink_attempts=200,
    )
    result = session.run(1, start=36)
    assert not result.ok
    (report,) = result.failures
    assert report.kind == KIND_BMC
    assert "completes without tripping an assert" in report.detail
    ((shrunk, path),) = result.shrunk
    assert path is not None
    entry = json.loads(open(path).read())
    assert entry["kind"] == KIND_BMC
    # The minimized program keeps the essential shape: a loop around an
    # input-dependent join feeding the assert.
    assert "while" in shrunk.case.source
    assert "assert" in shrunk.case.source
    assert len(shrunk.case.source) <= len(session.generator.generate(36).source)


def test_injected_fault_is_invisible_to_the_healthy_oracle():
    """The exact case the meta-test relies on is clean without the fault
    (so the corpus reproducer pins the fix, not a latent failure)."""
    case = ProgramGenerator(2).generate(36)
    report = SoundnessOracle().check(case, check_jobs=False)
    assert report.ok, report.detail


# -- the bit-weighted generator -----------------------------------------------------


def test_bit_weight_off_keeps_the_default_stream():
    plain = [ProgramGenerator("bw").generate(i).source for i in range(6)]
    explicit = [
        ProgramGenerator("bw", bit_weight=False).generate(i).source for i in range(6)
    ]
    assert plain == explicit


def test_bit_weight_is_deterministic_and_emits_bit_constructs():
    first = [ProgramGenerator("bw", bit_weight=True).generate(i) for i in range(12)]
    second = [ProgramGenerator("bw", bit_weight=True).generate(i) for i in range(12)]
    assert [c.source for c in first] == [c.source for c in second]
    merged = "\n".join(c.source for c in first)
    assert "<<" in merged or " & " in merged or " | " in merged
    assert any(const in merged for const in ("32767", "-32768", "16384"))
    for case in first:
        parse_c_program(case.source, name=case.name)  # must stay well-formed


@pytest.mark.fuzz_smoke
def test_bit_weight_fuzz_smoke_is_clean():
    result = FuzzSession(seed="bw-smoke", jobs_stride=0, bit_weight=True).run(4)
    assert result.ok, "\n".join(result.summary_lines())
    assert result.bmc_checked > 0


def test_cli_fuzz_bit_weight_flag():
    code, text = _run_cli(
        ["fuzz", "--count", "1", "--fuzz-seed", "bw-cli", "--jobs-stride", "0",
         "--bit-weight"]
    )
    assert code == 0, text
    assert "fuzz: digest" in text
