"""Tests for the flow-insensitive may-alias analysis."""

from repro.cfront import parse_c_program, parse_expression
from repro.pointers import PointsToAnalysis, UnionFind


def analyze(source):
    prog = parse_c_program(source)
    return prog, PointsToAnalysis(prog)


def e(text):
    return parse_expression(text)


# -- union-find ---------------------------------------------------------------


def test_unionfind_singletons():
    uf = UnionFind()
    assert uf.find("a") == "a"
    assert not uf.same("a", "b")


def test_unionfind_union_and_same():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("b", "c")
    assert uf.same("a", "c")
    assert not uf.same("a", "d")


def test_unionfind_union_returns_absorbed():
    uf = UnionFind()
    survivor, absorbed = uf.union("a", "b")
    assert {survivor, absorbed} == {"a", "b"}
    again, absorbed2 = uf.union("a", "b")
    assert absorbed2 is None


def test_unionfind_path_compression_idempotent():
    uf = UnionFind()
    for i in range(100):
        uf.union(0, i)
    root = uf.find(0)
    assert all(uf.find(i) == root for i in range(100))


# -- basic aliasing facts -----------------------------------------------------


def test_distinct_variables_never_alias():
    _, pta = analyze("void f(void) { int x, y; x = 1; y = 2; }")
    assert not pta.may_alias(e("x"), e("y"), "f")
    assert pta.may_alias(e("x"), e("x"), "f")


def test_no_address_taken_means_no_deref_alias():
    # The Section 2 fact: curr/prev/next/newl have no address taken, so no
    # dereference can alias them.
    _, pta = analyze(
        """
        struct cell { int val; struct cell *next; };
        void f(struct cell **l) {
            struct cell *curr, *prev;
            curr = *l;
            prev = curr;
        }
        """
    )
    assert not pta.may_alias(e("prev"), e("*l"), "f")
    assert not pta.may_alias(e("curr"), e("*l"), "f")


def test_address_taken_variable_aliases_deref():
    _, pta = analyze(
        """
        void f(void) {
            int x;
            int *p;
            p = &x;
            *p = 3;
        }
        """
    )
    assert pta.may_alias(e("x"), e("*p"), "f")


def test_address_taken_flag_stamped():
    prog, _ = analyze("void f(void) { int x, y; int *p; p = &x; y = *p; }")
    func = prog.functions["f"]
    assert func.lookup_var("x").address_taken
    assert not func.lookup_var("y").address_taken


def test_unrelated_pointers_do_not_alias():
    _, pta = analyze(
        """
        void f(void) {
            int a, b;
            int *p, *q;
            p = &a;
            q = &b;
        }
        """
    )
    assert not pta.may_alias(e("*p"), e("*q"), "f")
    assert not pta.may_alias(e("*p"), e("b"), "f")


def test_pointer_copy_aliases():
    _, pta = analyze(
        """
        void f(void) {
            int a;
            int *p, *q;
            p = &a;
            q = p;
        }
        """
    )
    assert pta.may_alias(e("*p"), e("*q"), "f")
    assert pta.may_alias(e("*q"), e("a"), "f")


def test_flow_insensitivity_merges_both_targets():
    # q points to a, then to b; flow-insensitively *q aliases both.
    _, pta = analyze(
        """
        void f(int c) {
            int a, b;
            int *q;
            q = &a;
            q = &b;
        }
        """
    )
    assert pta.may_alias(e("*q"), e("a"), "f")
    assert pta.may_alias(e("*q"), e("b"), "f")


# -- fields -------------------------------------------------------------------


def test_distinct_fields_never_alias():
    _, pta = analyze(
        """
        struct cell { int val; struct cell *next; };
        void f(struct cell *p) { p->val = 1; }
        """
    )
    assert not pta.may_alias(e("p->val"), e("p->next"), "f")


def test_same_field_of_aliased_bases_aliases():
    _, pta = analyze(
        """
        struct cell { int val; struct cell *next; };
        void f(struct cell *p) {
            struct cell *q;
            q = p;
            q->val = 1;
        }
        """
    )
    assert pta.may_alias(e("p->val"), e("q->val"), "f")


def test_same_field_of_unrelated_bases_separate_objects():
    _, pta = analyze(
        """
        struct cell { int val; struct cell *next; };
        void f(void) {
            struct cell a, b;
            struct cell *p, *q;
            p = &a;
            q = &b;
            p->val = 1;
        }
        """
    )
    assert not pta.may_alias(e("p->val"), e("q->val"), "f")


def test_field_does_not_alias_scalar_variable():
    _, pta = analyze(
        """
        struct cell { int val; struct cell *next; };
        void f(struct cell *p) { int x; x = p->val; }
        """
    )
    assert not pta.may_alias(e("p->val"), e("x"), "f")


def test_next_node_distinct_from_head():
    # After q = p->next alone, q points into the "next" objects, which the
    # analysis keeps apart from the head object: q->val and p->val do not
    # alias (and indeed cannot, dynamically, for acyclic lists).  The
    # procedure must have a caller, otherwise its formals are root inputs
    # whose pointees conservatively merge into the external world.
    _, pta = analyze(
        """
        struct cell { int val; struct cell *next; };
        void f(struct cell *p) {
            struct cell *q;
            q = p->next;
        }
        void main(void) {
            struct cell head;
            f(&head);
        }
        """
    )
    assert not pta.may_alias(e("q->val"), e("p->val"), "f")


def test_root_formals_may_alias_each_other():
    # An entry point's two pointer formals can be aliased by the caller;
    # the analysis must not separate them.
    _, pta = analyze(
        """
        struct cell { int val; struct cell *next; };
        void f(struct cell *p, struct cell *q) {
            p->val = 1;
        }
        """
    )
    assert pta.may_alias(e("p->val"), e("q->val"), "f")


def test_list_walk_collapses_spine():
    # p = p->next merges a node with its successors, so after a walk the
    # whole spine is one object and same-field accesses may alias.
    _, pta = analyze(
        """
        struct cell { int val; struct cell *next; };
        void f(struct cell *p) {
            struct cell *q;
            q = p;
            while (q != NULL) { q = q->next; }
        }
        """
    )
    assert pta.may_alias(e("q->val"), e("p->val"), "f")


# -- arrays -------------------------------------------------------------------


def test_array_elements_share_cell():
    _, pta = analyze("void f(void) { int a[10]; int i, j; a[0] = 1; }")
    assert pta.may_alias(e("a[i]"), e("a[j]"), "f")


def test_distinct_arrays_do_not_alias():
    _, pta = analyze("void f(void) { int a[10]; int b[10]; a[0] = 1; b[0] = 2; }")
    assert not pta.may_alias(e("a[0]"), e("b[0]"), "f")


def test_pointer_into_array_aliases_elements():
    _, pta = analyze(
        """
        void f(void) {
            int a[10];
            int *p;
            p = a;
            *p = 1;
        }
        """
    )
    assert pta.may_alias(e("*p"), e("a[3]"), "f")


# -- calls ---------------------------------------------------------------------


def test_parameter_binding_propagates():
    # Alias queries are per-procedure scope, so observe the binding through
    # a global whose address is passed to the callee.
    _, pta = analyze(
        """
        int x;
        void g(int *q) { *q = 1; }
        void f(void) {
            g(&x);
        }
        """
    )
    assert pta.may_alias(e("*q"), e("x"), "g")


def test_return_value_propagates():
    _, pta = analyze(
        """
        int *pick(int *p) { return p; }
        void f(void) {
            int x;
            int *r;
            r = pick(&x);
        }
        """
    )
    assert pta.may_alias(e("*r"), e("x"), "f")


def test_extern_call_collapses_escaped_pointers():
    _, pta = analyze(
        """
        void f(void) {
            int x;
            int *p;
            p = &x;
            mystery(p);
        }
        """
    )
    # x escaped; externs may now write it through anything they return.
    assert pta.may_point_into_external(e("x"), "f")


def test_locals_not_escaping_stay_private():
    _, pta = analyze(
        """
        void f(void) {
            int x;
            int y;
            mystery(x);
            y = 1;
        }
        """
    )
    assert not pta.may_point_into_external(e("y"), "f")


def test_globals_vs_locals_scoping():
    _, pta = analyze(
        """
        int g;
        void f(void) { int g; g = 1; }
        void h(void) { g = 2; }
        """
    )
    # f's local g and the global g are different cells.
    assert pta.ecr_of(e("g"), "f") != pta.ecr_of(e("g"), "h")
