"""Unit tests for the safety-spec automaton language and instrumentation
details not covered by the end-to-end SLAM tests."""

import pytest

from repro.cfront import cast as C
from repro.cfront import parse_c_program
from repro.slam import SafetySpec, SpecError, instrument_program
from repro.slam.spec import ERROR
from repro.slam.instrument import STATE_VAR, stub_name


# -- the automaton ------------------------------------------------------------


def test_transitions_default_to_self_loop():
    spec = SafetySpec("s", ["A", "B"], "A")
    spec.on("A", "go", "B")
    assert spec.transition("A", "go") == "B"
    assert spec.transition("B", "go") == "B"  # unwatched: stay
    assert spec.transition("A", "other") == "A"


def test_error_transitions():
    spec = SafetySpec("s", ["A"], "A")
    spec.error_on("A", "boom")
    assert spec.transition("A", "boom") is ERROR


def test_unknown_state_rejected():
    spec = SafetySpec("s", ["A"], "A")
    with pytest.raises(SpecError):
        spec.on("Z", "go", "A")
    with pytest.raises(SpecError):
        spec.on("A", "go", "Z")


def test_initial_state_must_exist():
    with pytest.raises(SpecError):
        SafetySpec("s", ["A"], "B")


def test_lock_discipline_shape():
    spec = SafetySpec.lock_discipline("acq", "rel")
    assert spec.initial == "Unlocked"
    assert spec.transition("Unlocked", "acq") == "Locked"
    assert spec.transition("Locked", "rel") == "Unlocked"
    assert spec.transition("Locked", "acq") is ERROR
    assert spec.transition("Unlocked", "rel") is ERROR
    assert set(spec.events) == {"acq", "rel"}


def test_complete_exactly_once_shape():
    spec = SafetySpec.complete_exactly_once("done")
    assert spec.transition("Pending", "done") == "Completed"
    assert spec.transition("Completed", "done") is ERROR
    assert spec.final_forbidden == []


def test_must_complete_shape():
    spec = SafetySpec.must_complete_before_return("done")
    assert spec.final_forbidden == ["Pending"]


def test_complete_or_forward_shape():
    spec = SafetySpec.complete_or_forward("done", "fwd")
    assert spec.transition("Pending", "done") == "Done"
    assert spec.transition("Pending", "fwd") == "Done"
    assert spec.transition("Done", "done") is ERROR
    assert spec.transition("Done", "fwd") is ERROR
    assert spec.final_forbidden == ["Pending"]


# -- instrumentation details -------------------------------------------------------


def _instrumented(source, spec, entry="main"):
    program = parse_c_program(source)
    return instrument_program(program, spec, entry=entry)


def test_state_assignment_inserted_at_entry():
    spec = SafetySpec.lock_discipline("acq", "rel")
    program = _instrumented("void main(void) { acq(); }", spec)
    first = program.functions["main"].body[0]
    assert isinstance(first, C.Assign)
    assert first.lhs == C.Id(STATE_VAR)
    assert first.rhs == C.IntLit(0)


def test_stub_encodes_error_as_assert_zero():
    spec = SafetySpec.lock_discipline("acq", "rel")
    program = _instrumented("void main(void) { acq(); }", spec)
    stub = program.functions[stub_name("acq")]
    asserts = []

    def visit(stmts):
        for stmt in stmts:
            if isinstance(stmt, C.Assert):
                asserts.append(stmt)
            for sub in stmt.substatements():
                visit(sub)

    visit(stub.body)
    assert len(asserts) == 1  # acquiring in Locked state is the error
    assert asserts[0].cond == C.IntLit(0)


def test_final_state_checks_inserted_before_return():
    spec = SafetySpec.must_complete_before_return("done")
    program = _instrumented("void main(void) { done(); }", spec)
    body = program.functions["main"].body
    assert isinstance(body[-1], C.Return)
    assert isinstance(body[-2], C.Assert)
    # The forbidden state is Pending (index 0).
    assert body[-2].cond == C.BinOp("!=", C.Id(STATE_VAR), C.IntLit(0))


def test_call_with_result_keeps_lhs():
    spec = SafetySpec.complete_exactly_once("done")
    program = _instrumented("void main(void) { int s; s = done(); }", spec)
    calls = [
        s
        for s in program.functions["main"].body
        if isinstance(s, C.CallStmt) and s.name == stub_name("done")
    ]
    assert calls and calls[0].lhs == C.Id("s")


def test_stub_calls_not_reinstrumented():
    # Stubs themselves are skipped by call-site rewriting.
    spec = SafetySpec.lock_discipline("acq", "rel")
    program = _instrumented("void main(void) { acq(); rel(); acq(); rel(); }", spec)
    stub = program.functions[stub_name("acq")]

    def count_calls(stmts):
        total = 0
        for stmt in stmts:
            if isinstance(stmt, C.CallStmt):
                total += 1
            for sub in stmt.substatements():
                total += count_calls(sub)
        return total

    assert count_calls(stub.body) == 0


def test_missing_entry_rejected():
    spec = SafetySpec.lock_discipline("acq", "rel")
    with pytest.raises(ValueError):
        _instrumented("void helper(void) { acq(); }", spec, entry="main")
