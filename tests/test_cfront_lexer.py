"""Unit tests for the lexer."""

import pytest

from repro.cfront import tokenize
from repro.cfront.errors import LexError
from repro.cfront import tokens as T


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


def test_empty_input_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == T.EOF


def test_whitespace_only_input():
    toks = tokenize("   \n\t  \r\n ")
    assert [t.kind for t in toks] == [T.EOF]


def test_keywords_vs_identifiers():
    toks = tokenize("int integer if iffy while whileLoop")
    assert [t.kind for t in toks[:-1]] == [
        T.KEYWORD,
        T.IDENT,
        T.KEYWORD,
        T.IDENT,
        T.KEYWORD,
        T.IDENT,
    ]


def test_decimal_literal():
    tok = tokenize("42")[0]
    assert tok.kind == T.INTLIT
    assert tok.value == 42


def test_hex_literal():
    tok = tokenize("0x1F")[0]
    assert tok.value == 31


def test_octal_literal():
    tok = tokenize("010")[0]
    assert tok.value == 8


def test_zero_literal():
    tok = tokenize("0")[0]
    assert tok.value == 0


def test_integer_suffixes_ignored():
    assert tokenize("10UL")[0].value == 10
    assert tokenize("7u")[0].value == 7


def test_malformed_hex_raises():
    with pytest.raises(LexError):
        tokenize("0x")


def test_identifier_glued_to_number_raises():
    with pytest.raises(LexError):
        tokenize("1abc")


def test_char_literal():
    tok = tokenize("'a'")[0]
    assert tok.kind == T.CHARLIT
    assert tok.value == ord("a")


def test_char_escape():
    assert tokenize(r"'\n'")[0].value == 10
    assert tokenize(r"'\0'")[0].value == 0


def test_string_literal():
    tok = tokenize('"hello"')[0]
    assert tok.kind == T.STRINGLIT
    assert tok.value == "hello"


def test_maximal_munch_punctuators():
    assert texts("a->b") == ["a", "->", "b"]
    assert texts("a-- -b") == ["a", "--", "-", "b"]
    assert texts("x<<=1") == ["x", "<<=", "1"]
    assert texts("a&&b") == ["a", "&&", "b"]
    assert texts("a&b") == ["a", "&", "b"]
    assert texts("x<=y") == ["x", "<=", "y"]
    assert texts("x < = y") == ["x", "<", "=", "y"]


def test_line_comment():
    assert texts("a // comment\n b") == ["a", "b"]


def test_block_comment():
    assert texts("a /* stuff \n more */ b") == ["a", "b"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_preprocessor_lines_skipped():
    assert texts("#include <stdio.h>\nint x;") == ["int", "x", ";"]


def test_positions_track_lines_and_columns():
    toks = tokenize("ab\n  cd")
    assert toks[0].pos.line == 1 and toks[0].pos.column == 1
    assert toks[1].pos.line == 2 and toks[1].pos.column == 3


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("int $x;")


def test_trailing_token_before_eof():
    toks = tokenize("x")
    assert toks[-1].kind == T.EOF
    assert toks[-2].text == "x"
