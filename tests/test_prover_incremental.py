"""The incremental assumption-based cube engine and parallel abstraction.

Three layers of guarantees:

- :class:`SatSolver` assumption handling: persistent solver state across
  ``solve()`` calls and a sound unsat-core-lite (the subset of assumptions
  in the final conflict);
- differential identity: the incremental session classifies exactly the
  cube sets the fresh-solver-per-cube baseline does, on randomized
  instances (hypothesis) and on real programs;
- ``--jobs``: the parallel statement abstraction emits a byte-identical
  boolean program and merged accounting.
"""

from hypothesis import given, settings, strategies as st

from repro import C2bp, parse_c_program, parse_predicate_file
from repro.boolprog.printer import print_bool_program
from repro.cfront import parse_expression
from repro.core import C2bpOptions
from repro.core.cubes import CubeSearch
from repro.engine import EngineContext
from repro.programs import get_program
from repro.prover import Prover, Satisfiability
from repro.prover import sat as sat_module
from repro.prover.sat import SatSolver


class _Cand:
    def __init__(self, text):
        self.expr = parse_expression(text)
        self.name = text.replace(" ", "")


# -- SatSolver assumptions and persistence -------------------------------------------


def test_assumptions_respected_in_model():
    solver = SatSolver()
    solver.add_clause([1, 2])
    result = solver.solve(assumptions=[-1])
    assert result.sat and result.model[1] is False and result.model[2] is True


def test_assumption_core_single_failed_assumption():
    solver = SatSolver()
    solver.add_clause([-1])
    result = solver.solve(assumptions=[1, 2])
    assert not result.sat
    assert result.core == (1,)


def test_assumption_core_joint_conflict():
    solver = SatSolver()
    solver.add_clause([-1, -2])
    assert solver.solve(assumptions=[1]).sat
    result = solver.solve(assumptions=[1, 2])
    assert not result.sat
    assert set(result.core) <= {1, 2} and len(result.core) >= 1


def test_assumption_core_through_propagation():
    # 1 -> 3, 2 -> -3: assuming 1 and 2 conflicts via propagation; 4 is
    # irrelevant and must not appear in the core.
    solver = SatSolver()
    solver.add_clause([-1, 3])
    solver.add_clause([-2, -3])
    result = solver.solve(assumptions=[4, 1, 2])
    assert not result.sat
    assert 4 not in result.core
    assert set(result.core) <= {1, 2}


def test_solver_state_persists_across_solves():
    sat_module.reset_counters()
    solver = SatSolver()
    solver.add_clause([1, 2])
    solver.add_clause([-1, 2])
    assert solver.solve(assumptions=[1]).sat
    assert solver.solve(assumptions=[-2, 1]).sat is False
    assert solver.solve().sat
    assert sat_module.COUNTERS["solver_states"] == 1
    assert sat_module.COUNTERS["solves"] == 3


def test_clauses_added_between_solves():
    solver = SatSolver()
    solver.add_clause([1, 2])
    assert solver.solve().sat
    solver.add_clause([-1])
    solver.add_clause([-2])
    assert not solver.solve().sat
    # The solver is now permanently unsat, with or without assumptions.
    assert not solver.solve(assumptions=[3]).sat


# -- differential identity: incremental vs fresh-per-cube ----------------------------


_VARS = ("x", "y")


@st.composite
def _atom(draw):
    var = draw(st.sampled_from(_VARS))
    op = draw(st.sampled_from(["<", "<=", "==", ">", ">=", "!="]))
    constant = draw(st.integers(min_value=-3, max_value=3))
    if draw(st.booleans()):
        return "%s %s %d" % (var, op, constant)
    return "x + y %s %d" % (op, constant)


@st.composite
def _instance(draw):
    candidates = draw(st.lists(_atom(), min_size=1, max_size=3, unique=True))
    goal = draw(_atom())
    return candidates, goal


@settings(max_examples=40, deadline=None)
@given(_instance())
def test_incremental_matches_fresh_on_random_instances(instance):
    candidate_texts, goal_text = instance
    candidates = [_Cand(t) for t in candidate_texts]
    goal = parse_expression(goal_text)
    incremental = CubeSearch(
        Prover(), C2bpOptions(syntactic_heuristics=False, incremental_cubes=True)
    )
    fresh = CubeSearch(
        Prover(), C2bpOptions(syntactic_heuristics=False, incremental_cubes=False)
    )
    assert incremental.implicant_cubes(candidates, goal) == fresh.implicant_cubes(
        candidates, goal
    )


@settings(max_examples=25, deadline=None)
@given(_instance())
def test_incremental_matches_fresh_inconsistent_cubes(instance):
    candidate_texts, _ = instance
    candidates = [_Cand(t) for t in candidate_texts]
    incremental = CubeSearch(Prover(), C2bpOptions(incremental_cubes=True))
    fresh = CubeSearch(Prover(), C2bpOptions(incremental_cubes=False))
    assert incremental.inconsistent_cubes(candidates, 3) == fresh.inconsistent_cubes(
        candidates, 3
    )


def test_incremental_matches_fresh_on_partition():
    study = get_program("partition")
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    with_sessions = C2bp(
        program, predicates, options=C2bpOptions(incremental_cubes=True)
    ).run()
    baseline = C2bp(
        program, predicates, options=C2bpOptions(incremental_cubes=False)
    ).run()
    assert print_bool_program(with_sessions) == print_bool_program(baseline)


# -- session accounting --------------------------------------------------------------


def test_session_counters_track_reuse():
    prover = Prover()
    search = CubeSearch(
        prover,
        C2bpOptions(
            syntactic_heuristics=False,
            incremental_cubes=True,
            strengthen="cubes",
        ),
    )
    candidates = [_Cand("x < 5"), _Cand("x == 2"), _Cand("y > 0")]
    search.implicant_cubes(candidates, parse_expression("x < 4"))
    stats = prover.stats
    assert stats.cube_sessions >= 2  # one per direction (=> phi, => !phi)
    assert stats.assumption_solves > 0
    # Every decide after a session's first reuses that session's encoding.
    assert stats.cnf_encodings_saved > 0
    assert stats.calls == stats.valid + stats.invalid + stats.unknown


def test_allsat_counters_track_catalog():
    prover = Prover()
    search = CubeSearch(
        prover, C2bpOptions(syntactic_heuristics=False, strengthen="allsat")
    )
    candidates = [_Cand("x < 5"), _Cand("x == 2"), _Cand("y > 0")]
    search.implicant_cubes(candidates, parse_expression("x < 4"))
    stats = prover.stats
    assert stats.allsat_sweeps >= 2  # one per direction (=> phi, => !phi)
    assert stats.allsat_models > 0
    # The SAT-side cube answers come from the swept model catalog.
    assert stats.allsat_model_hits > 0
    assert stats.allsat_sweep_solves > 0
    assert stats.calls == stats.valid + stats.invalid + stats.unknown


def test_unsat_core_shrinks_recorded_cube():
    prover = Prover()
    session = prover.cube_session(
        [parse_expression("x < 5"), parse_expression("x == 2")],
        parse_expression("x < 10"),
    )
    result, core = session.implies_cube(((0, True), (1, True)))
    assert result is True
    # Either literal alone implies x < 10, so the core keeps just one.
    assert core in (((0, True),), ((1, True),))
    assert prover.stats.core_shrinks == 1


def test_fresh_fallback_reports_no_core():
    prover = Prover()
    session = prover.cube_session(
        [parse_expression("x < 5"), parse_expression("x == 2")],
        parse_expression("x < 10"),
        incremental=False,
    )
    result, core = session.implies_cube(((0, True), (1, True)))
    assert result is True and core is None
    assert prover.stats.assumption_solves == 0


def test_cube_session_shares_query_cache_with_implies():
    prover = Prover()
    expr = parse_expression("x < 5")
    goal = parse_expression("x < 10")
    assert prover.implies([expr], goal) is True
    session = prover.cube_session([expr], goal)
    hits_before = prover.stats.cache_hits
    result, _ = session.implies_cube(((0, True),))
    assert result is True
    assert prover.stats.cache_hits == hits_before + 1


# -- parallel statement abstraction --------------------------------------------------


def _abstract_qsort(options):
    study = get_program("qsort")
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    context = EngineContext(options=options)
    tool = C2bp(program, predicates, context=context)
    return tool, tool.run()


def test_parallel_abstraction_is_deterministic():
    serial_tool, serial_bp = _abstract_qsort(C2bpOptions(jobs=1))
    parallel_tool, parallel_bp = _abstract_qsort(C2bpOptions(jobs=3))
    # qsort has two procedures and call-site temporaries, so this covers
    # the worker temp renaming (__rw<stmt>_<k> -> __r<N>) and body merge.
    serial_text = print_bool_program(serial_bp)
    assert "__r0" in serial_text
    assert serial_text == print_bool_program(parallel_bp)
    assert serial_tool.temp_meanings == parallel_tool.temp_meanings


def test_parallel_merges_stats_cache_and_events():
    tool, _ = _abstract_qsort(C2bpOptions(jobs=3))
    assert tool.stats.prover_calls > 0
    assert tool.stats.per_procedure and all(
        calls >= 0 for calls in tool.stats.per_procedure.values()
    )
    assert tool.prover.stats.calls == tool.stats.prover_calls
    assert len(tool.prover.cache) > 0
    kinds = {event["kind"] for event in tool.context.events.events}
    assert "cube-test" in kinds and "c2bp-procedure" in kinds
    snapshot = tool.context.stats.snapshot()
    assert snapshot["c2bp"]["prover_calls"] == tool.stats.prover_calls


def test_parallel_stats_match_serial_totals():
    serial_tool, _ = _abstract_qsort(C2bpOptions(jobs=1))
    parallel_tool, _ = _abstract_qsort(C2bpOptions(jobs=3))
    # Counters that do not depend on cache hit distribution must agree.
    assert serial_tool.stats.assignments_abstracted == (
        parallel_tool.stats.assignments_abstracted
    )
    assert serial_tool.stats.conditionals_abstracted == (
        parallel_tool.stats.conditionals_abstracted
    )
    assert serial_tool.stats.calls_abstracted == parallel_tool.stats.calls_abstracted
    assert set(serial_tool.stats.per_procedure) == set(
        parallel_tool.stats.per_procedure
    )


def test_incremental_session_decides_consistently():
    # Direct IncrementalCubeSession use: decisions match plain implies().
    prover_a = Prover()
    prover_b = Prover()
    candidates = [parse_expression("x < 5"), parse_expression("y == 1")]
    goal = parse_expression("x < 9")
    session = prover_a.cube_session(candidates, goal)
    from repro.cfront import cast as C

    for cube in [((0, True),), ((0, False),), ((1, True),), ((0, True), (1, False))]:
        result, _ = session.implies_cube(cube)
        exprs = [
            candidates[i] if pol else C.negate(candidates[i]) for i, pol in cube
        ]
        assert result == prover_b.implies(exprs, goal)


def test_satisfiability_enum_reexported():
    assert Satisfiability.UNSAT.name == "UNSAT"
