"""The unified engine spine: context threading, shared prover cache,
stats registry, event bus, and the backend registry."""

import json

from repro.cfront import cast as C
from repro.cfront import parse_c_program
from repro.core import C2bp, Predicate, PredicateSet
from repro.engine import (
    EngineContext,
    EventBus,
    StatsRegistry,
    available_backends,
    create_backend,
    register_backend,
)
from repro.engine.backends import _REGISTRY
from repro.prover import Prover, Satisfiability
from repro.slam import cegar_loop, SafetySpec
from repro.slam.instrument import STATE_VAR, instrument_program

# The nPackets lock-discipline driver of examples/cegar_refinement.py:
# iteration 1 (state predicates only) reports a spurious double-acquire,
# Newton adds the data predicates, and iteration 2 validates.
NPACKETS_SOURCE = r"""
void main(void) {
    int nPackets, nPacketsOld, request;
    nPackets = 0;
    do {
        KeAcquireSpinLock();
        nPacketsOld = nPackets;
        request = *;
        if (request > 0) {
            KeReleaseSpinLock();
            nPackets = nPackets + 1;
        }
    } while (nPackets != nPacketsOld);
    KeReleaseSpinLock();
}
"""


def _npackets_setup():
    spec = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
    program = parse_c_program(NPACKETS_SOURCE, "npackets.c")
    instrument_program(program, spec, entry="main")
    predicates = PredicateSet()
    for index, _state in enumerate(spec.states):
        predicates.add(
            Predicate(C.BinOp("==", C.Id(STATE_VAR), C.IntLit(index)), None)
        )
    return program, predicates


def test_cross_iteration_cache_reuse():
    """Iteration 2 of the CEGAR loop re-issues strictly fewer raw prover
    calls than abstracting with a fresh prover, because the shared
    canonical-form cache already holds iteration 1's (and Newton's)
    answers."""
    program, predicates = _npackets_setup()
    context = EngineContext()
    result = cegar_loop(
        program, initial_predicates=predicates, main="main", context=context
    )
    assert result.verdict == "safe"
    assert len(result.iteration_stats) == 2
    second = result.iteration_stats[1]
    assert second.cache_hits > 0

    # Baseline: the same final abstraction built against a fresh prover
    # (no state carried over from iteration 1 or Newton).
    fresh = C2bp(program, result.predicates, prover=Prover())
    fresh.run()
    assert second.prover_calls < fresh.stats.prover_calls


def test_per_iteration_stats_are_deltas():
    program, predicates = _npackets_setup()
    context = EngineContext()
    result = cegar_loop(
        program, initial_predicates=predicates, main="main", context=context
    )
    total_calls = sum(s.prover_calls for s in result.iteration_stats)
    assert total_calls == result.total_prover_calls
    assert result.iteration_stats[0].error_reached
    assert not result.iteration_stats[1].error_reached
    # The registry's iteration log mirrors the result's records.
    log = context.stats.section("iterations")
    assert len(log) == len(result.iteration_stats)
    assert log[0]["prover_calls"] == result.iteration_stats[0].prover_calls


def test_stats_registry_json_round_trip():
    program, predicates = _npackets_setup()
    context = EngineContext()
    cegar_loop(program, initial_predicates=predicates, main="main", context=context)
    text = context.stats.to_json()
    snapshot = StatsRegistry.from_json(text)
    assert snapshot == json.loads(text)
    for section in ("phases", "prover", "prover_cache", "c2bp", "bebop",
                    "iterations", "cegar", "events"):
        assert section in snapshot
    assert snapshot["cegar"]["verdict"] == "safe"
    assert snapshot["phases"]["c2bp"]["count"] == 2
    assert snapshot["prover"]["calls"] == snapshot["cegar"]["total_prover_calls"]
    # The snapshot is stable under a second serialization.
    assert json.loads(context.stats.to_json()) == snapshot


def test_event_bus_records_pipeline_events():
    program, predicates = _npackets_setup()
    context = EngineContext()
    seen = []
    context.events.subscribe(lambda event: seen.append(event["kind"]))
    cegar_loop(program, initial_predicates=predicates, main="main", context=context)
    kinds = {event["kind"] for event in context.events.events}
    assert {"phase-start", "phase-end", "prover-query", "cube-test",
            "c2bp-procedure", "cegar-iteration"} <= kinds
    assert set(seen) == kinds
    iterations = context.events.of_kind("cegar-iteration")
    assert [event["iteration"] for event in iterations] == [1, 2]
    cached = [e for e in context.events.of_kind("prover-query") if e["cached"]]
    assert cached, "shared cache should answer some queries"


def test_legacy_prover_options_kwargs_still_work():
    program, predicates = _npackets_setup()
    prover = Prover()
    result = cegar_loop(
        program, initial_predicates=predicates, main="main", prover=prover
    )
    assert result.verdict == "safe"
    assert result.total_prover_calls == prover.stats.calls


def test_context_adopts_supplied_prover():
    prover = Prover()
    context = EngineContext(prover=prover)
    assert context.prover is prover
    assert context.cache is prover.cache
    assert prover.events is context.events
    assert EngineContext.ensure(context) is context
    assert EngineContext.ensure(None, prover=prover).prover is prover


def test_backend_registry():
    assert "dpllt" in available_backends()
    backend = create_backend("dpllt")
    assert backend.name == "dpllt"
    assert create_backend(backend) is backend

    class AlwaysUnknown:
        name = "always-unknown"

        def check_implication(self, antecedents, consequent):
            return Satisfiability.UNKNOWN

        def check_satisfiable(self, exprs):
            return Satisfiability.UNKNOWN

    register_backend("always-unknown", AlwaysUnknown)
    try:
        context = EngineContext(backend="always-unknown")
        x = C.Id("x")
        assert not context.prover.implies([x], x)
        assert context.prover.stats.unknown == 1
    finally:
        _REGISTRY.pop("always-unknown", None)

    try:
        create_backend("no-such-backend")
    except KeyError as error:
        assert "dpllt" in str(error)
    else:
        raise AssertionError("unknown backend should raise KeyError")
