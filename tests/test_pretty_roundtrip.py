"""Round-trip properties: pretty-printing then re-parsing is the identity
(up to the first print), for expressions and whole programs."""

from hypothesis import given, settings, strategies as st

from repro.cfront import cast as C
from repro.cfront import parse_c_program, parse_expression, parse_program
from repro.cfront.pretty import pretty_expr, pretty_program


_VARS = ["a", "b", "p", "q"]


def _expr_strategy():
    atoms = st.one_of(
        st.sampled_from(_VARS).map(C.Id),
        st.integers(0, 9).map(C.IntLit),
    )

    def compound(children):
        return st.one_of(
            st.builds(
                C.BinOp,
                st.sampled_from(sorted(C.BINARY_OPS)),
                children,
                children,
            ),
            st.builds(C.UnOp, st.sampled_from(["-", "!", "~"]), children),
            st.builds(C.Deref, children),
            children.map(lambda e: C.FieldAccess(C.Deref(e), "val")),
            st.builds(C.Index, children, children),
        )

    return st.recursive(atoms, compound, max_leaves=10)


@settings(max_examples=300, deadline=None)
@given(_expr_strategy())
def test_expression_roundtrip(expr):
    text = pretty_expr(expr)
    reparsed = parse_expression(text)
    assert reparsed == expr, (text, pretty_expr(reparsed))


@settings(max_examples=100, deadline=None)
@given(_expr_strategy())
def test_pretty_is_fixpoint(expr):
    once = pretty_expr(expr)
    again = pretty_expr(parse_expression(once))
    assert once == again


PROGRAMS = [
    """
    struct cell { int val; struct cell *next; };
    int g = 3;
    int find(struct cell *p, int v) {
        int found;
        found = 0;
        while (p != NULL) {
            if (p->val == v) { found = 1; }
            p = p->next;
        }
        return found;
    }
    """,
    """
    int a[10];
    void fill(int n) {
        int i;
        for (i = 0; i < n; i++) { a[i] = i * i; }
    }
    """,
    """
    void control(int x) {
        int y;
        y = 0;
        if (x > 0) { goto pos; }
        y = -1;
        goto done;
    pos:
        y = 1;
    done:
        assert(y != 0);
    }
    """,
]


def test_program_roundtrip_parsed_form():
    # Parse (unlowered) -> print -> parse -> print must be a fixpoint.
    for source in PROGRAMS:
        program = parse_program(source)
        once = pretty_program(program)
        again = pretty_program(parse_program(once))
        assert once == again


def test_program_roundtrip_lowered_form():
    # Lowered programs print to valid C-subset source that re-lowers to the
    # same statement structure.
    for source in PROGRAMS:
        lowered = parse_c_program(source)
        text = pretty_program(lowered)
        relowered = parse_c_program(text)
        assert lowered.statement_count() >= relowered.statement_count() - 2
        assert set(lowered.functions) == set(relowered.functions)


def test_printed_lowered_program_is_reparseable_for_corpus():
    from repro.programs import all_table2_programs

    for study in all_table2_programs():
        lowered = parse_c_program(study.source, study.name)
        text = pretty_program(lowered)
        reparsed = parse_c_program(text)
        assert set(reparsed.functions) == set(lowered.functions)
