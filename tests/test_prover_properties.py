"""Property-based validation of the prover against brute-force semantics.

The prover decides formulas over unbounded integers; a brute-force search
over a small grid gives a one-sided oracle:

- if the prover claims ``φ`` valid, no grid point may falsify ``φ``;
- if some grid point satisfies a conjunction, ``is_satisfiable`` must not
  answer UNSAT;
- the prover must never claim both ``φ`` and ``¬φ`` valid.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.cfront import cast as C
from repro.prover import Prover, Satisfiability

_VARS = ["a", "b", "c"]
_GRID = list(itertools.product(range(-3, 4), repeat=len(_VARS)))


def _term_strategy():
    atoms = st.one_of(
        st.sampled_from(_VARS).map(C.Id),
        st.integers(-4, 4).map(C.IntLit),
    )
    return st.recursive(
        atoms,
        lambda children: st.builds(
            C.BinOp, st.sampled_from(["+", "-", "*"]), children, children
        ),
        max_leaves=5,
    )


def _formula_strategy():
    atom = st.builds(
        C.BinOp,
        st.sampled_from(["<", "<=", "==", "!=", ">", ">="]),
        _term_strategy(),
        _term_strategy(),
    )
    return st.recursive(
        atom,
        lambda children: st.one_of(
            st.builds(C.BinOp, st.just("&&"), children, children),
            st.builds(C.BinOp, st.just("||"), children, children),
            st.builds(C.UnOp, st.just("!"), children),
        ),
        max_leaves=8,
    )


def _eval(expr, env):
    if isinstance(expr, C.IntLit):
        return expr.value
    if isinstance(expr, C.Id):
        return env[expr.name]
    if isinstance(expr, C.UnOp):
        value = _eval(expr.operand, env)
        return {"-": -value, "!": int(not value)}[expr.op]
    left, right = _eval(expr.left, env), _eval(expr.right, env)
    return {
        "+": left + right,
        "-": left - right,
        "*": left * right,
        "<": int(left < right),
        "<=": int(left <= right),
        ">": int(left > right),
        ">=": int(left >= right),
        "==": int(left == right),
        "!=": int(left != right),
        "&&": int(bool(left) and bool(right)),
        "||": int(bool(left) or bool(right)),
    }[expr.op]


def _grid_models(formula):
    for point in _GRID:
        env = dict(zip(_VARS, point))
        if _eval(formula, env):
            yield env


@settings(max_examples=60, deadline=None)
@given(_formula_strategy())
def test_validity_claims_hold_on_grid(formula):
    prover = Prover()
    if prover.is_valid(formula):
        for point in _GRID:
            env = dict(zip(_VARS, point))
            assert _eval(formula, env), (formula, env)


@settings(max_examples=60, deadline=None)
@given(_formula_strategy())
def test_unsat_claims_hold_on_grid(formula):
    prover = Prover()
    verdict = prover.is_satisfiable([formula])
    if verdict is Satisfiability.UNSAT:
        assert next(_grid_models(formula), None) is None, formula


@settings(max_examples=40, deadline=None)
@given(_formula_strategy())
def test_never_both_valid(formula):
    prover = Prover()
    both = prover.is_valid(formula) and prover.is_valid(C.negate(formula))
    assert not both


@settings(max_examples=40, deadline=None)
@given(_formula_strategy(), _formula_strategy())
def test_implication_transport_on_grid(antecedent, consequent):
    prover = Prover()
    if prover.implies([antecedent], consequent):
        for env in _grid_models(antecedent):
            assert _eval(consequent, env), (antecedent, consequent, env)


@settings(max_examples=30, deadline=None)
@given(_formula_strategy())
def test_linear_fragment_is_complete_for_grid_counterexamples(formula):
    # These formulas are purely linear when no '*' joins two variables;
    # for those, a grid counterexample must force is_valid == False.
    def is_linear(expr):
        if isinstance(expr, C.BinOp) and expr.op == "*":
            sides = (expr.left, expr.right)
            if not any(isinstance(s, C.IntLit) for s in sides):
                return False
        return all(is_linear(child) for child in expr.children())

    if not is_linear(formula):
        return
    prover = Prover()
    has_counterexample = any(
        not _eval(formula, dict(zip(_VARS, point))) for point in _GRID
    )
    if has_counterexample:
        assert not prover.is_valid(formula)
