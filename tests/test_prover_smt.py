"""Tests for the combined theory check, the DPLL(T) loop, and the Prover
front door on C expressions — including the paper's reasoning examples."""

from repro.cfront import parse_expression
from repro.prover import Prover, Satisfiability, check_formula
from repro.prover.terms import (
    app,
    c_expr_to_formula,
    eq,
    land,
    le,
    lnot,
    lor,
    lt,
    num,
    var,
)
from repro.prover.theory import check_literals


def e(text):
    return parse_expression(text)


# -- theory combination ------------------------------------------------------


def test_theory_euf_plus_arith_conflict():
    # x = y, f(x) <= 3, f(y) >= 5 is unsat by congruence + bounds.
    literals = [
        (eq(var("x"), var("y")), True),
        (le(app("f", var("x")), num(3)), True),
        (le(num(5), app("f", var("y"))), True),
    ]
    assert not check_literals(literals)


def test_theory_arith_entails_equality_feeds_congruence():
    # x <= y, y <= x, f(x) != f(y) must be unsat (LA forces x=y).
    literals = [
        (le(var("x"), var("y")), True),
        (le(var("y"), var("x")), True),
        (eq(app("f", var("x")), app("f", var("y"))), False),
    ]
    assert not check_literals(literals)


def test_theory_disequality_split():
    # x != y with 0 <= x <= 1 and 0 <= y <= 1 is satisfiable (x=0,y=1).
    literals = [
        (eq(var("x"), var("y")), False),
        (le(num(0), var("x")), True),
        (le(var("x"), num(1)), True),
        (le(num(0), var("y")), True),
        (le(var("y"), num(1)), True),
    ]
    assert check_literals(literals)


def test_theory_disequality_pinched_unsat():
    # x != y with x <= y and y <= x is unsat.
    literals = [
        (eq(var("x"), var("y")), False),
        (le(var("x"), var("y")), True),
        (le(var("y"), var("x")), True),
    ]
    assert not check_literals(literals)


def test_theory_negated_le_is_strict_reverse():
    # not(x <= y) and x <= y is unsat.
    literals = [
        (le(var("x"), var("y")), True),
        (le(var("x"), var("y")), False),
    ]
    assert not check_literals(literals)


# -- formula-level SMT ----------------------------------------------------------


def test_formula_tautology_unsat_negated():
    formula = lnot(lor(le(var("x"), num(5)), le(num(5), var("x"))))
    assert check_formula(formula) is Satisfiability.UNSAT


def test_formula_satisfiable_conjunction():
    formula = land(le(var("x"), num(5)), le(num(3), var("x")))
    assert check_formula(formula) is Satisfiability.SAT


def test_formula_case_split_over_boolean_structure():
    # (x <= 0 or x >= 10) and 3 <= x <= 7  -> unsat
    formula = land(
        lor(le(var("x"), num(0)), le(num(10), var("x"))),
        le(num(3), var("x")),
        le(var("x"), num(7)),
    )
    assert check_formula(formula) is Satisfiability.UNSAT


def test_formula_true_false_shortcuts():
    assert check_formula(("true",)) is Satisfiability.SAT
    assert check_formula(("false",)) is Satisfiability.UNSAT


def test_formula_strict_lt_through_lt_helper():
    formula = land(lt(var("x"), num(5)), lt(num(3), var("x")))
    assert check_formula(formula) is Satisfiability.SAT  # x = 4
    formula = land(lt(var("x"), num(4)), lt(num(3), var("x")))
    assert check_formula(formula) is Satisfiability.UNSAT  # no integer strictly between


# -- Prover on C expressions ------------------------------------------------------


def test_implies_paper_strengthening_example():
    # (x == 2) implies (x < 4) — Section 4.1's strengthening example.
    prover = Prover()
    assert prover.implies([e("x == 2")], e("x < 4"))
    assert not prover.implies([e("x == 2")], e("x > 4"))


def test_implies_empty_antecedent_is_validity():
    prover = Prover()
    assert prover.is_valid(e("x == x"))
    assert prover.is_valid(e("x < y || x >= y"))
    assert not prover.is_valid(e("x < y"))


def test_implies_transitive_pointers_fields():
    # p == q implies p->val == q->val (congruence through deref+field).
    prover = Prover()
    assert prover.implies([e("p == q")], e("p->val == q->val"))
    assert not prover.implies([e("p != q")], e("p->val == q->val"))


def test_paper_section2_alias_refinement():
    # The Section 2.2 invariant implies *prev and *curr are not aliases:
    # curr != NULL && curr->val > v && (prev->val <= v || prev == NULL)
    #   implies prev != curr.
    prover = Prover()
    invariant = [
        e("curr != 0"),
        e("curr->val > v"),
        e("prev->val <= v || prev == 0"),
    ]
    assert prover.implies(invariant, e("prev != curr"))


def test_contrapositive_field_reasoning():
    # (p->val != q->val) implies (p != q) — used in Section 2's footnote.
    prover = Prover()
    assert prover.implies([e("p->val != q->val")], e("p != q"))


def test_address_constants_distinct():
    prover = Prover()
    assert prover.is_valid(e("&x != &y"))
    assert prover.is_valid(e("&x != 0"))
    assert not prover.is_valid(e("&x == &y"))


def test_address_equality_substitution():
    # &x == p implies *p == x ... through congruence on deref(p)=deref(&x)?
    # We cannot prove *(&x) == x (no axiom), but p == &x && *p > 0 must be
    # satisfiable, not contradictory.
    prover = Prover()
    sat = prover.is_satisfiable([e("p == &x"), e("*p > 0")])
    assert sat is Satisfiability.SAT


def test_boolean_values_in_integer_position():
    # After WP of x = (a < b) into predicate (x == 1): ((a < b) == 1)
    # must behave like (a < b).
    prover = Prover()
    assert prover.implies([e("a < b")], e("(a < b) == 1"))
    assert prover.implies([e("(a < b) == 1")], e("a < b"))
    assert prover.implies([e("(a < b) == 0")], e("a >= b"))


def test_nonlinear_is_unknown_but_sound():
    # x*y == y*x is true but treated as uninterpreted: must NOT be proven
    # invalid in the unsound direction — returning False is acceptable,
    # returning True is also fine if congruence catches it. It must not
    # prove x*y != y*x.
    prover = Prover()
    assert not prover.is_valid(e("x*y != y*x"))


def test_division_uninterpreted_but_congruent():
    prover = Prover()
    assert prover.implies([e("a == b")], e("a / c == b / c"))


def test_is_satisfiable_for_path_feasibility():
    prover = Prover()
    assert prover.is_satisfiable([e("x > 0"), e("x < 10")]) is Satisfiability.SAT
    assert prover.is_satisfiable([e("x > 0"), e("x < 0")]) is Satisfiability.UNSAT


def test_cache_counts():
    prover = Prover()
    prover.implies([e("x == 2")], e("x < 4"))
    before = prover.stats.calls
    prover.implies([e("x == 2")], e("x < 4"))
    assert prover.stats.calls == before
    assert prover.stats.cache_hits == 1


def test_cache_disabled():
    prover = Prover(enable_cache=False)
    prover.implies([e("x == 2")], e("x < 4"))
    prover.implies([e("x == 2")], e("x < 4"))
    assert prover.stats.calls == 2


def test_figure2_weakest_precondition_facts():
    # From Section 4.3: E(F_V(*p + x <= 0)) = (*p <= 0) && (x == 0): check
    # the two directions the cube search relies on.
    prover = Prover()
    assert prover.implies([e("*p <= 0"), e("x == 0")], e("*p + x <= 0"))
    assert not prover.implies([e("*p <= 0")], e("*p + x <= 0"))
    assert not prover.implies([e("x == 0")], e("*p + x <= 0"))
    assert prover.implies([e("*p > 0"), e("x == 0")], e("!(*p + x <= 0)"))


def test_c_expr_to_formula_side_conditions():
    formula, defs = c_expr_to_formula(e("x == (a < b)"))
    # The comparison in integer position produces one definitional constraint.
    assert len(defs) == 1


def test_unknown_expression_distinct_occurrences():
    # Two syntactic '*' unknowns are unconstrained and independent.
    prover = Prover()
    assert not prover.is_valid(e("* == *"))
