"""Tests for weakest preconditions (Sections 4.1/4.2), including the
property that WP is correct with respect to concrete execution."""

from hypothesis import given, settings, strategies as st

from repro.cfront import cast as C
from repro.cfront import parse_c_program, parse_expression
from repro.cfront.pretty import pretty_expr
from repro.core.wp import address_expr, weakest_precondition, wp_unchanged
from repro.pointers import PointsToAnalysis


def e(text):
    return parse_expression(text)


def no_alias(a, b):
    return a == b


def all_alias(a, b):
    return True


# -- scalar substitution -------------------------------------------------------


def test_wp_scalar_substitution():
    # WP(x = x + 1, x < 5) == x + 1 < 5.
    wp = weakest_precondition(e("x"), e("x + 1"), e("x < 5"), no_alias)
    assert wp == e("x + 1 < 5")


def test_wp_unrelated_variable_unchanged():
    wp = weakest_precondition(e("x"), e("0"), e("y < 5"), no_alias)
    assert wp == e("y < 5")


def test_wp_constant_rhs_folds():
    wp = weakest_precondition(e("x"), e("3"), e("x < 5"), no_alias)
    assert wp == e("1")  # 3 < 5 folds to true


def test_wp_multiple_occurrences():
    wp = weakest_precondition(e("x"), e("y"), e("x + x == 2"), no_alias)
    assert wp == e("y + y == 2")


def test_wp_pointer_copy_rewrites_chain():
    # WP(prev = curr, prev->val > v) == curr->val > v (prev has no aliases).
    wp = weakest_precondition(e("prev"), e("curr"), e("prev->val > v"), no_alias)
    assert wp == e("curr->val > v")


# -- Morris' axiom ---------------------------------------------------------------


def test_wp_store_through_pointer_possible_alias():
    # The paper's example: WP(x = 3, *p > 5) =
    #   (&x == p && 3 > 5) || (&x != p && *p > 5)
    wp = weakest_precondition(e("x"), e("3"), e("*p > 5"), all_alias)
    text = pretty_expr(wp)
    assert "&x" in text
    # One disjunct must keep *p > 5, the other substitutes 3 (folds false).
    assert "*p > 5" in text


def test_wp_store_no_alias_prunes():
    wp = weakest_precondition(e("x"), e("3"), e("*p > 5"), no_alias)
    assert wp == e("*p > 5")


def test_wp_deref_lhs_must_alias_itself():
    # WP(*p = 1, *p == 1) with p unaliased to anything else: substitution.
    wp = weakest_precondition(e("*p"), e("1"), e("*p == 1"), no_alias)
    assert wp == e("1")  # 1 == 1 folds


def test_wp_two_pointers_scenarios():
    # WP(*p = 0, *q > 0) must consider p/q aliasing.
    wp = weakest_precondition(e("*p"), e("0"), e("*q > 0"), all_alias)
    text = pretty_expr(wp)
    assert "p ==" in text or "== q" in text or "p !=" in text


def test_wp_field_assignment_same_field_other_base():
    # WP(p->val = 0, q->val > 0): p may alias q.
    wp = weakest_precondition(e("p->val"), e("0"), e("q->val > 0"), all_alias)
    text = pretty_expr(wp)
    assert "&" in text  # alias scenario present


def test_wp_with_points_to_pruning():
    program = parse_c_program(
        """
        struct cell { int val; struct cell *next; };
        void f(struct cell *p, struct cell *q, int x) {
            p->val = 0;
        }
        """
    )
    pta = PointsToAnalysis(program)
    may = lambda a, b: pta.may_alias(a, b, "f")  # noqa: E731
    # x is a plain int: the field store cannot affect it.
    wp = weakest_precondition(e("p->val"), e("0"), e("x > 0"), may)
    assert wp == e("x > 0")
    # q->val may alias p->val (same struct type reached from params).
    wp2 = weakest_precondition(e("p->val"), e("0"), e("q->val > 0"), may)
    assert wp2 != e("q->val > 0")


def test_wp_unchanged_check():
    assert wp_unchanged(e("x"), e("1"), e("y > 0"), no_alias)
    assert not wp_unchanged(e("x"), e("1"), e("x > 0"), no_alias)
    assert not wp_unchanged(e("x"), e("1"), e("*p > 0"), all_alias)
    assert wp_unchanged(e("x"), e("1"), e("*p > 0"), no_alias)


def test_address_expr_simplifies():
    assert address_expr(e("*p")) == e("p")
    assert address_expr(e("x")) == e("&x")


# -- semantic correctness (property-based) -------------------------------------------

# Random scalar programs: check state |= WP(x=e, phi)  <=>  exec |= phi.

_VARS = ["a", "b", "c"]


def _expr_strategy():
    atoms = st.one_of(
        st.sampled_from(_VARS).map(C.Id),
        st.integers(-3, 3).map(C.IntLit),
    )
    return st.recursive(
        atoms,
        lambda children: st.builds(
            C.BinOp, st.sampled_from(["+", "-", "*"]), children, children
        ),
        max_leaves=6,
    )


def _pred_strategy():
    return st.builds(
        C.BinOp,
        st.sampled_from(["<", "<=", "==", "!=", ">", ">="]),
        _expr_strategy(),
        _expr_strategy(),
    )


def _eval(expr, env):
    if isinstance(expr, C.IntLit):
        return expr.value
    if isinstance(expr, C.Id):
        return env[expr.name]
    if isinstance(expr, C.BinOp):
        left, right = _eval(expr.left, env), _eval(expr.right, env)
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "<": lambda: int(left < right),
            "<=": lambda: int(left <= right),
            ">": lambda: int(left > right),
            ">=": lambda: int(left >= right),
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
            "&&": lambda: int(bool(left) and bool(right)),
            "||": lambda: int(bool(left) or bool(right)),
        }
        return ops[expr.op]()
    if isinstance(expr, C.UnOp):
        value = _eval(expr.operand, env)
        return {"-": -value, "!": int(not value), "+": value, "~": ~value}[expr.op]
    raise AssertionError(expr)


@settings(max_examples=200, deadline=None)
@given(
    target=st.sampled_from(_VARS),
    rhs=_expr_strategy(),
    phi=_pred_strategy(),
    state=st.tuples(*(st.integers(-4, 4) for _ in _VARS)),
)
def test_wp_semantic_correctness_scalars(target, rhs, phi, state):
    env = dict(zip(_VARS, state))
    wp = weakest_precondition(C.Id(target), rhs, phi, no_alias)
    post_env = dict(env)
    post_env[target] = _eval(rhs, env)
    assert bool(_eval(wp, env)) == bool(_eval(phi, post_env))
