"""Edge cases of the abstraction: Morris scenarios, address-of predicates,
arrays, globals through calls, compound guards."""

from repro.bebop import Bebop
from repro.boolprog import BAssign, BConst, BUnknown, BVar
from repro.cfront import cast as C
from repro.cfront import parse_c_program, parse_expression
from repro.cfront.pretty import pretty_expr
from repro.core import C2bp, parse_predicate_file
from repro.core.wp import weakest_precondition


def abstract(source, predicate_text):
    program = parse_c_program(source)
    predicates = parse_predicate_file(predicate_text, program)
    tool = C2bp(program, predicates)
    return tool, tool.run()


def flatten(stmts):
    out = []
    for stmt in stmts:
        out.append(stmt)
        for sub in stmt.substatements():
            out.extend(flatten(sub))
    return out


def find_by_comment(proc, text):
    return [s for s in flatten(proc.body) if s.comment and text in s.comment]


def e(text):
    return parse_expression(text)


# -- Morris expansion structure -----------------------------------------------


def test_worst_case_two_locations_four_disjuncts():
    # With two may-aliased dereference locations, WP has 2^2 = 4 disjuncts
    # (the Section 4.2 worst case); the oracle here refutes aliasing with
    # the plain pointer variables themselves.
    may = lambda lhs, loc: not isinstance(loc, C.Id)  # noqa: E731
    wp = weakest_precondition(e("*p"), e("y"), e("*q + *r > 0"), may)
    text = pretty_expr(wp)
    assert text.count("||") == 3  # four disjuncts


def test_must_alias_collapses_to_substitution():
    wp = weakest_precondition(e("*p"), e("5"), e("*p == 5"), None)
    # *p is syntactically the assigned location: substituted in every
    # scenario, and 5 == 5 folds away.
    assert "5 == 5" not in pretty_expr(wp)


def test_scenario_conditions_use_addresses():
    wp = weakest_precondition(e("x"), e("y"), e("*p > 1"), None)
    text = pretty_expr(wp)
    assert "&x == p" in text or "p == &x" in text
    assert "&x != p" in text or "p != &x" in text


def test_address_of_is_not_a_read():
    # Assigning x cannot change the predicate p == &x: &x is not a read of
    # x, so with p known distinct from x the WP is the predicate itself.
    no_alias = lambda a, b: a == b  # noqa: E731
    wp = weakest_precondition(e("x"), e("7"), e("p == &x"), no_alias)
    assert wp == e("p == &x")


# -- address-of predicates ---------------------------------------------------------


def test_address_assignment_tracked():
    _, bp = abstract(
        """
        void main(void) {
            int x, y;
            int *p;
            p = &x;
            L1: ;
            p = &y;
            L2: ;
        }
        """,
        "main\np == &x, p == &y\n",
    )
    result = Bebop(bp).run()
    (cube1,) = result.invariant_cubes("main", label="L1")
    assert cube1["p==&x"] is True and cube1["p==&y"] is False
    (cube2,) = result.invariant_cubes("main", label="L2")
    assert cube2["p==&y"] is True and cube2["p==&x"] is False


def test_store_through_tracked_pointer():
    _, bp = abstract(
        """
        void main(void) {
            int x;
            int *p;
            x = 0;
            p = &x;
            *p = 1;
            L: ;
        }
        """,
        "main\np == &x, x == 1\n",
    )
    result = Bebop(bp).run()
    (cube,) = result.invariant_cubes("main", label="L")
    assert cube["x==1"] is True


def test_store_through_maybe_pointer_invalidates():
    tool, bp = abstract(
        """
        void main(int c) {
            int x, y;
            int *p;
            x = 0;
            if (c > 0) { p = &x; } else { p = &y; }
            *p = 1;
            L: ;
        }
        """,
        "main\nx == 1, x == 0\n",
    )
    result = Bebop(bp).run()
    cubes = result.invariant_cubes("main", label="L")
    # x may or may not have been written: both outcomes reachable, but the
    # enforce invariant keeps x==1 and x==0 mutually exclusive.
    seen = {(cube.get("x==1"), cube.get("x==0")) for cube in cubes}
    assert not any(a is True and b is True for a, b in seen)
    assert any(a is True or (a is None) for a, _ in seen)


# -- arrays ------------------------------------------------------------------------


def test_array_store_updates_element_predicate():
    _, bp = abstract(
        """
        int a[4];
        void main(int i) {
            a[i] = 5;
            L: ;
        }
        """,
        "main\na[i] == 5\n",
    )
    result = Bebop(bp).run()
    (cube,) = result.invariant_cubes("main", label="L")
    assert cube["a[i]==5"] is True


def test_array_store_other_index_conservative():
    _, bp = abstract(
        """
        int a[4];
        void main(int i, int j) {
            a[i] = 5;
            a[j] = 7;
            L: ;
        }
        """,
        "main\na[i] == 5\n",
    )
    result = Bebop(bp).run()
    cubes = result.invariant_cubes("main", label="L")
    # a[j] may alias a[i]: the predicate may be true or false at L.
    values = {cube.get("a[i]==5") for cube in cubes}
    assert values == {None} or values >= {True, False}


# -- globals through calls ------------------------------------------------------------


def test_global_predicate_updated_inside_callee():
    _, bp = abstract(
        """
        int g;
        void set(void) { g = 1; }
        void main(void) {
            g = 0;
            set();
            L: ;
        }
        """,
        "global\ng == 1\n",
    )
    result = Bebop(bp).run()
    (cube,) = result.invariant_cubes("main", label="L")
    assert cube["g==1"] is True
    # The update happens inside set's abstraction, not at the call site.
    proc = bp.procedures["set"]
    assigns = [s for s in flatten(proc.body) if isinstance(s, BAssign)]
    assert any("g==1" in a.targets for a in assigns)


def test_caller_local_over_global_restrengthened():
    tool, bp = abstract(
        """
        int g;
        void bump(void) { g = g + 1; }
        void main(void) {
            int snapshot;
            g = 0;
            snapshot = g;
            bump();
            L: ;
        }
        """,
        "global\ng == 0\n\nmain\nsnapshot == g\n",
    )
    proc = bp.procedures["main"]
    updates = find_by_comment(proc, "update after bump()")
    assert updates, "caller-local predicate over a global must be updated"
    assert "snapshot==g" in updates[0].targets


# -- compound guards ---------------------------------------------------------------


def test_compound_condition_guard():
    _, bp = abstract(
        """
        void main(int x, int y) {
            if (x > 0 && y > 0) {
                L: ;
            }
        }
        """,
        "main\nx > 0, y > 0\n",
    )
    result = Bebop(bp).run()
    (cube,) = result.invariant_cubes("main", label="L")
    assert cube["x>0"] is True and cube["y>0"] is True


def test_disjunctive_condition_guard():
    _, bp = abstract(
        """
        void main(int x, int y) {
            if (x > 0 || y > 0) {
            } else {
                L: ;
            }
        }
        """,
        "main\nx > 0, y > 0\n",
    )
    result = Bebop(bp).run()
    (cube,) = result.invariant_cubes("main", label="L")
    assert cube["x>0"] is False and cube["y>0"] is False


def test_unsigned_style_guard_with_arith():
    _, bp = abstract(
        """
        void main(int n) {
            int i;
            i = 0;
            while (i < n) {
                i = i + 1;
            }
            L: ;
        }
        """,
        "main\ni < n, i == 0, i >= n\n",
    )
    result = Bebop(bp).run()
    for cube in result.invariant_cubes("main", label="L"):
        assert cube.get("i<n") is not True


def test_self_recursive_function_abstracts():
    _, bp = abstract(
        """
        int down(int n) {
            int r;
            if (n <= 0) { r = 0; return r; }
            r = down(n - 1);
            return r;
        }
        void main(void) {
            int x;
            x = down(5);
            L: ;
        }
        """,
        "down\nn <= 0, r == 0\n\nmain\nx == 0\n",
    )
    result = Bebop(bp).run()
    (cube,) = result.invariant_cubes("main", label="L")
    assert cube["x==0"] is True
