"""The fuzzing subsystem itself: smoke, determinism, and the meta-test
that the oracle actually catches (and the shrinker actually minimizes)
an injected soundness bug.

The injected bug is the real one the fuzzer found during development:
reverting the caller-side return-binding fix in ``repro.core.calls``
(``g = helper(...)`` with a global result target must re-strengthen
global predicates) makes seed-0 case 7 fail again.
"""

import pytest

import repro.core.calls as calls_module
from repro.fuzz import (
    KIND_SOUNDNESS,
    FuzzSession,
    ProgramGenerator,
    SoundnessOracle,
    shrink_case,
)

pytestmark = pytest.mark.fuzz_smoke


def test_fuzz_smoke_is_clean():
    """A fixed-seed batch: no soundness violations, no divergences."""
    session = FuzzSession(seed="smoke", jobs_stride=5)
    result = session.run(10)
    assert result.ok, "\n".join(result.summary_lines())
    assert result.cases == 10
    assert result.replays > 0
    assert result.prover_calls > 0


def test_fuzz_generation_is_deterministic():
    """Same seed, same cases — byte-identical sources and predicates."""
    first = [ProgramGenerator("det").generate(i) for i in range(8)]
    second = [ProgramGenerator("det").generate(i) for i in range(8)]
    assert [c.fingerprint() for c in first] == [c.fingerprint() for c in second]
    assert [c.source for c in first] == [c.source for c in second]


def test_fuzz_session_digest_is_reproducible():
    """Two sessions with the same seed agree on the session digest (the
    property the CI fuzz-smoke job and the nightly job key on)."""
    a = FuzzSession(seed="digest", jobs_stride=0).run(4)
    b = FuzzSession(seed="digest", jobs_stride=0).run(4)
    assert a.ok and b.ok
    assert a.digest() == b.digest()


def test_fuzz_cli_subcommand():
    """``python -m repro fuzz`` end to end: exit code 0 and a summary."""
    import io

    from repro.cli import main

    out = io.StringIO()
    code = main(
        ["fuzz", "--count", "2", "--fuzz-seed", "cli", "--jobs-stride", "0"],
        out=out,
    )
    text = out.getvalue()
    assert code == 0, text
    assert "fuzz: digest" in text
    assert "no soundness violations" in text


@pytest.mark.slow
def test_fuzz_extended_batch():
    """The nightly-scale tier (excluded from the default run)."""
    result = FuzzSession(seed="extended", jobs_stride=10).run(60)
    assert result.ok, "\n".join(result.summary_lines())


def test_fuzzer_finds_and_shrinks_injected_soundness_bug(monkeypatch):
    """Reverting the return-binding fix must be caught and minimized."""
    monkeypatch.setattr(
        calls_module,
        "_binding_affected_globals",
        lambda proc_abs, stmt, already_affected: [],
    )
    monkeypatch.setattr(
        calls_module,
        "_binding_clobbers_meaning",
        lambda proc_abs, stmt, predicate_expr, signature: False,
    )
    oracle = SoundnessOracle()
    case = ProgramGenerator("0").generate(7)
    report = oracle.check(case, check_jobs=False)
    assert report.kind == KIND_SOUNDNESS, report.detail

    shrunk = shrink_case(
        case,
        KIND_SOUNDNESS,
        lambda c: oracle.check(c, check_jobs=False).kind,
    )
    assert shrunk.attempts > 0
    # The minimized case still exhibits the bug ...
    assert oracle.check(shrunk.case, check_jobs=False).kind == KIND_SOUNDNESS
    # ... and is no larger than the original.
    assert len(shrunk.case.source) <= len(case.source)
    assert len(shrunk.case.predicate_text) <= len(case.predicate_text)
    # The shrunk program keeps the essential shape: a call binding a
    # return value into the global.
    assert "g = helper(" in shrunk.case.source
