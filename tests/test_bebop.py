"""Tests for the Bebop model checker (symbolic + explicit engines)."""

import itertools

import pytest

from repro.bebop import Bebop, ExplicitEngine
from repro.boolprog import parse_bool_program


def check(source, main="main"):
    program = parse_bool_program(source)
    return Bebop(program, main=main).run()


# -- intraprocedural reachability ----------------------------------------------


def test_straight_line_invariant():
    result = check(
        """
        void main() {
            decl a, b;
            a = 1;
            b = 0;
            L: skip;
        }
        """
    )
    cubes = result.invariant_cubes("main", label="L")
    assert cubes == [{"a": True, "b": False}]


def test_initial_values_unconstrained():
    result = check(
        """
        void main() {
            decl a;
            L: skip;
            a = 1;
        }
        """
    )
    cubes = result.invariant_cubes("main", label="L")
    # a can be anything at L: the cube list must not constrain it.
    assert cubes == [{}]


def test_branch_correlation_tracked():
    # After the diamond, a and b are correlated (both 1 or both 0): Bebop
    # computes over *sets* of bit vectors, not independent bits.
    result = check(
        """
        void main() {
            decl a, b;
            if (*) { a = 1; b = 1; } else { a = 0; b = 0; }
            L: skip;
        }
        """
    )
    cubes = result.invariant_cubes("main", label="L")
    states = set()
    for cube in cubes:
        assert set(cube) == {"a", "b"}
        states.add((cube["a"], cube["b"]))
    assert states == {(True, True), (False, False)}


def test_assume_filters_states():
    result = check(
        """
        void main() {
            decl a;
            assume(a);
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"a": True}]


def test_unreachable_after_contradictory_assumes():
    result = check(
        """
        void main() {
            decl a;
            assume(a);
            assume(!a);
            L: skip;
        }
        """
    )
    assert not result.is_label_reachable("main", "L")


def test_unknown_assignment_loses_information():
    result = check(
        """
        void main() {
            decl a;
            a = 1;
            a = unknown();
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{}]


def test_choose_assignment_three_valued():
    result = check(
        """
        void main() {
            decl p, n, t;
            assume(!(p && n));
            t = choose(p, n);
            L: skip;
        }
        """
    )
    states = set()
    for cube in result.invariant_cubes("main", label="L"):
        for assignment in _expand(cube, ["p", "n", "t"]):
            states.add(tuple(assignment[v] for v in ["p", "n", "t"]))
    # p => t; n => !t; neither => both possible.
    for p, n, t in states:
        assert not (p and n)
        if p:
            assert t
        if n:
            assert not t
    assert (False, False, True) in states
    assert (False, False, False) in states


def _expand(cube, names):
    free = [n for n in names if n not in cube]
    for values in itertools.product([False, True], repeat=len(free)):
        assignment = dict(cube)
        assignment.update(zip(free, values))
        yield assignment


def test_while_loop_fixpoint():
    # Toggling a in a nondet loop reaches both values.
    result = check(
        """
        void main() {
            decl a;
            a = 0;
            while (*) { a = !a; }
            L: skip;
        }
        """
    )
    cubes = result.invariant_cubes("main", label="L")
    assert cubes == [{}]


def test_goto_reachability():
    result = check(
        """
        void main() {
            decl a;
            a = 0;
            goto skipover;
            a = 1;
            skipover: L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"a": False}]


def test_parallel_assignment_swap():
    result = check(
        """
        void main() {
            decl a, b;
            a = 1; b = 0;
            a, b = b, a;
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"a": False, "b": True}]


def test_enforce_excludes_states():
    result = check(
        """
        void main() {
            decl a, b;
            enforce !(a && b);
            L: skip;
        }
        """
    )
    for cube in result.invariant_cubes("main", label="L"):
        for assignment in _expand(cube, ["a", "b"]):
            assert not (assignment["a"] and assignment["b"])


# -- assertions ---------------------------------------------------------------


def test_assertion_failure_detected():
    result = check(
        """
        void main() {
            decl a;
            a = 0;
            assert(a);
        }
        """
    )
    assert result.error_reached


def test_assertion_holds():
    result = check(
        """
        void main() {
            decl a;
            a = 1;
            assert(a);
        }
        """
    )
    assert not result.error_reached


def test_assertion_after_assume_protection():
    result = check(
        """
        void main() {
            decl a;
            assume(a);
            assert(a);
        }
        """
    )
    assert not result.error_reached


# -- procedures -----------------------------------------------------------------


def test_call_return_value():
    result = check(
        """
        bool id(p) {
            return p;
        }
        void main() {
            decl a;
            a = id(1);
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"a": True}]


def test_call_negation():
    result = check(
        """
        bool neg(p) {
            return !p;
        }
        void main() {
            decl a, b;
            a = 1;
            b = neg(a);
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"a": True, "b": False}]


def test_call_context_sensitivity():
    # Summaries must keep input-output correlation: neg(0)=1 and neg(1)=0,
    # never neg(0)=0.
    result = check(
        """
        bool neg(p) {
            return !p;
        }
        void main() {
            decl a, b;
            b = neg(a);
            L: skip;
        }
        """
    )
    states = set()
    for cube in result.invariant_cubes("main", label="L"):
        for assignment in _expand(cube, ["a", "b"]):
            states.add((assignment["a"], assignment["b"]))
    assert states == {(False, True), (True, False)}


def test_globals_updated_by_callee():
    result = check(
        """
        decl g;
        void set() {
            g = 1;
        }
        void main() {
            g = 0;
            set();
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"g": True}]


def test_multiple_returns():
    result = check(
        """
        bool<2> pair(p) {
            return p, !p;
        }
        void main() {
            decl a, b;
            a, b = pair(1);
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"a": True, "b": False}]


def test_locals_unconstrained_at_entry():
    result = check(
        """
        bool peek() {
            decl t;
            return t;
        }
        void main() {
            decl a;
            a = peek();
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{}]


def test_recursion_terminates_with_summaries():
    # A recursive procedure that flips its argument until it is true.
    result = check(
        """
        bool down(p) {
            decl r;
            if (p) { return 1; }
            r = down(!p);
            return r;
        }
        void main() {
            decl a;
            a = down(0);
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"a": True}]


def test_assert_inside_callee():
    result = check(
        """
        void callee(p) {
            assert(p);
        }
        void main() {
            callee(0);
        }
        """
    )
    assert result.error_reached


def test_call_argument_expression():
    result = check(
        """
        bool id(p) { return p; }
        void main() {
            decl a, b;
            a = 1;
            b = id(!a);
            L: skip;
        }
        """
    )
    assert result.invariant_cubes("main", label="L") == [{"a": True, "b": False}]


# -- symbolic vs explicit (differential) ------------------------------------------


DIFFERENTIAL_PROGRAMS = [
    """
    void main() {
        decl a, b;
        if (*) { a = 1; } else { a = 0; b = a; }
        L: skip;
    }
    """,
    """
    void main() {
        decl a, b;
        a = 0; b = 0;
        while (*) {
            assume(!(a && b));
            a, b = b, choose(a, !a);
        }
        L: skip;
    }
    """,
    """
    decl g;
    bool flip(p) { g = !g; return !p; }
    void main() {
        decl x;
        x = flip(g);
        x = flip(x);
        L: skip;
    }
    """,
]


@pytest.mark.parametrize("source", DIFFERENTIAL_PROGRAMS)
def test_symbolic_matches_explicit(source):
    program = parse_bool_program(source)
    result = Bebop(program).run()
    explicit = ExplicitEngine(program)
    valuations = explicit.reachable_valuations()
    graph = explicit.graphs["main"]
    label_node = graph.node_for_label("L")
    expected = set()
    local_names = program.procedures["main"].formals + program.procedures["main"].locals
    for globals_vals, locals_vals in valuations.get(("main", label_node.uid), set()):
        state = dict(zip(program.globals, globals_vals))
        state.update(zip(local_names, locals_vals))
        expected.add(tuple(sorted(state.items())))
    got = set()
    all_names = list(program.globals) + local_names
    for cube in result.invariant_cubes("main", label="L"):
        for assignment in _expand(cube, all_names):
            got.add(tuple(sorted(assignment.items())))
    assert got == expected


# -- explicit engine paths ----------------------------------------------------------


def test_explicit_finds_assertion_path():
    program = parse_bool_program(
        """
        void main() {
            decl a;
            a = 1;
            if (*) { a = 0; }
            assert(a);
        }
        """
    )
    path = ExplicitEngine(program).find_assertion_failure()
    assert path is not None
    kinds = [step.kind for step in path]
    assert "branch" in kinds


def test_explicit_no_path_when_safe():
    program = parse_bool_program(
        """
        void main() {
            decl a;
            a = 1;
            assert(a);
        }
        """
    )
    assert ExplicitEngine(program).find_assertion_failure() is None


def test_explicit_interprocedural_path():
    program = parse_bool_program(
        """
        void callee(p) { assert(p); }
        void main() { callee(0); }
        """
    )
    path = ExplicitEngine(program).find_assertion_failure()
    assert path is not None
    assert any(step.kind == "call" for step in path)


def test_explicit_find_label():
    program = parse_bool_program(
        """
        void main() {
            decl a;
            assume(a);
            L: skip;
        }
        """
    )
    path = ExplicitEngine(program).find_label("main", "L")
    assert path is not None
