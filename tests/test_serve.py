"""Integration tests for verification-as-a-service.

Three layers:

- **warm vs cold** — the same abstraction run against a ``--cache-dir``
  twice must print identical boolean programs, and the warm run must be
  answered from the store (no fresh prover calls);
- **worker pool + store** — a ``--jobs 2`` run with a cache directory
  follows the read-only-worker/write-through-parent discipline: workers'
  hit/miss deltas are merged into the parent store's counters, and only
  the parent writes records;
- **the daemon** — ``repro serve`` round trip over a unix socket:
  batched requests, control ops, ``--remote`` output identical to a
  local run, clean shutdown with no orphan socket or process.
"""

import io
import json
import os
import subprocess
import sys
import time

import pytest

from repro.cli import main as cli_main
from repro.core import C2bp, C2bpOptions, parse_predicate_file
from repro.cfront import parse_c_program
from repro.engine import EngineContext
from repro.boolprog.printer import print_bool_program
from repro.programs import get_program

_SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "src")


def _run_cli(argv):
    out = io.StringIO()
    code = cli_main(argv, out=out)
    return code, out.getvalue()


def _bp_body(output):
    """CLI ``abstract`` output without the stats trailer comment (the
    prover-call count and wall-clock seconds legitimately differ between
    cold and warm runs; the program text must not)."""
    return "\n".join(
        line for line in output.splitlines() if not line.startswith("// ")
    )


@pytest.fixture
def study_files(tmp_path):
    study = get_program("partition")
    c_file = tmp_path / "p.c"
    c_file.write_text(study.source)
    pred_file = tmp_path / "p.preds"
    pred_file.write_text(study.predicate_text)
    return study, str(c_file), str(pred_file)


# -- warm vs cold ----------------------------------------------------------


def test_warm_vs_cold_smoke(study_files, tmp_path):
    _, c_file, pred_file = study_files
    cache_dir = str(tmp_path / "cache")
    outputs = []
    snapshots = []
    for run in ("cold", "warm"):
        stats_file = str(tmp_path / ("stats-%s.json" % run))
        code, output = _run_cli(
            ["abstract", c_file, pred_file, "--cache-dir", cache_dir,
             "--stats-json", stats_file]
        )
        assert code == 0
        outputs.append(output)
        snapshots.append(json.load(open(stats_file)))
    assert _bp_body(outputs[0]) == _bp_body(outputs[1])
    cold, warm = snapshots
    assert cold["persistent_cache"]["writes"] > 0
    warm_store = warm["persistent_cache"]
    total = warm_store["hits"] + warm_store["misses"]
    assert warm_store["hits"] / total >= 0.95, warm_store
    assert warm["prover"]["calls"] == 0, "warm run must not call the prover"


def test_no_persistent_cache_flag_disables_store(study_files, tmp_path):
    _, c_file, pred_file = study_files
    cache_dir = str(tmp_path / "cache")
    stats_file = str(tmp_path / "stats.json")
    code, _ = _run_cli(
        ["abstract", c_file, pred_file, "--cache-dir", cache_dir,
         "--no-persistent-cache", "--stats-json", stats_file]
    )
    assert code == 0
    stats = json.load(open(stats_file))
    assert "persistent_cache" not in stats
    assert not os.path.exists(cache_dir)


def test_stats_json_schema(study_files, tmp_path):
    _, c_file, pred_file = study_files
    stats_file = str(tmp_path / "stats.json")
    code, _ = _run_cli(
        ["abstract", c_file, pred_file, "--cache-dir",
         str(tmp_path / "cache"), "--stats-json", stats_file]
    )
    assert code == 0
    stats = json.load(open(stats_file))
    assert stats["schema_version"] == 2
    store = stats["persistent_cache"]
    for field in ("hits", "misses", "writes", "evictions",
                  "cache_corrupt_records", "namespaces", "root"):
        assert field in store, field


# -- worker pool + store lifecycle -----------------------------------------


@pytest.mark.skipif(sys.platform == "win32", reason="needs fork")
def test_pool_and_cache_lifecycle(study_files, tmp_path):
    study, _, _ = study_files
    program = parse_c_program(study.source, name=study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    baseline_bp = None
    with EngineContext(options=C2bpOptions(jobs=1)) as context:
        baseline_bp = print_bool_program(
            C2bp(program, predicates, context=context).run()
        )
    cache_dir = str(tmp_path / "cache")
    for run in ("cold", "warm"):
        options = C2bpOptions(jobs=2, cache_dir=cache_dir)
        with EngineContext(options=options) as context:
            printed = print_bool_program(
                C2bp(program, predicates, context=context).run()
            )
            assert printed == baseline_bp, run
            counters = context.store.counters_with_namespaces()
        if run == "cold":
            assert counters["writes"] > 0, "parent must write through"
        else:
            # Worker hit deltas must be visible in the parent's merged
            # counters (the workers opened the store read-only).
            assert counters["hits"] > 0, counters
            assert counters["write_skips"] >= 0
            assert "prover" in counters["namespaces"]


# -- the daemon ------------------------------------------------------------


def _start_daemon(tmp_path, *extra):
    sock = str(tmp_path / "daemon.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC_ROOT] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock] + list(extra),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.time() + 20
    while not os.path.exists(sock):
        if proc.poll() is not None or time.time() > deadline:
            proc.kill()
            raise RuntimeError("daemon failed to listen: %s" % proc.stderr.read())
        time.sleep(0.05)
    return proc, sock


def test_serve_round_trip_smoke(tmp_path):
    from repro.serve.client import ServeClient

    study = get_program("partition")
    proc, sock = _start_daemon(tmp_path, "--cache-dir", str(tmp_path / "cache"))
    try:
        with ServeClient.connect_unix(sock, timeout=120) as client:
            assert client.ping()["ok"]
            request = {
                "op": "check",
                "source": study.source,
                "predicates": study.predicate_text,
                "entry": study.entry,
                "name": study.name,
            }
            first, second = client.batch([request, request])
            assert first["ok"] and second["ok"]
            assert first["exit_code"] == 0
            assert first["output"] == second["output"]
            stats = client.stats()
            assert stats["ops"]["check"] == 2
            assert stats["persistent_cache"]["writes"] > 0
            flushed = client.flush()
            assert flushed["ok"] and flushed["entries_dropped"] > 0
            # Unknown and failing ops must not kill the daemon.
            bad = client.request({"op": "no-such-op"})
            assert not bad["ok"]
            broken = client.request(
                {"op": "check", "source": "int main( {", "predicates": ""}
            )
            assert not broken["ok"] and "error" in broken
            assert client.ping()["ok"]
            assert client.shutdown()["ok"]
        assert proc.wait(timeout=15) == 0
        assert not os.path.exists(sock), "socket must be removed on shutdown"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_remote_check_is_byte_identical_smoke(tmp_path, study_files):
    study, c_file, pred_file = study_files
    proc, sock = _start_daemon(tmp_path, "--cache-dir", str(tmp_path / "cache"))
    try:
        local_code, local_out = _run_cli(
            ["check", c_file, pred_file, "--entry", study.entry]
        )
        remote_outputs = []
        for _ in range(2):  # second round trip rides the warm caches
            remote_code, remote_out = _run_cli(
                ["check", c_file, pred_file, "--entry", study.entry,
                 "--remote", sock]
            )
            assert remote_code == local_code
            remote_outputs.append(remote_out)
        assert remote_outputs[0] == local_out
        assert remote_outputs[1] == local_out
        from repro.serve.client import ServeClient

        with ServeClient.connect_unix(sock, timeout=30) as client:
            client.shutdown()
        assert proc.wait(timeout=15) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
