"""Tests for the experiment corpus (Table 1 drivers, Table 2 programs)."""

import pytest

from repro.bebop import Bebop
from repro.cfront import parse_c_program
from repro.core import C2bp, parse_predicate_file
from repro.programs import all_drivers, all_table2_programs, get_driver, get_program
from repro.slam import SafetySpec, check_property


@pytest.fixture(scope="module")
def table2_results():
    results = {}
    for study in all_table2_programs():
        program = parse_c_program(study.source, study.name)
        predicates = parse_predicate_file(study.predicate_text, program)
        tool = C2bp(program, predicates)
        boolean_program = tool.run()
        check = Bebop(boolean_program, main=study.entry).run()
        results[study.name] = (program, predicates, tool, check)
    return results


def test_registry_lookup():
    assert get_program("partition").name == "partition"
    assert get_driver("floppy").name == "floppy"
    with pytest.raises(KeyError):
        get_program("nosuch")
    with pytest.raises(KeyError):
        get_driver("nosuch")


def test_all_table2_programs_parse_and_abstract(table2_results):
    assert set(table2_results) == {"kmp", "qsort", "partition", "listfind", "reverse"}
    for name, (_, predicates, tool, _) in table2_results.items():
        assert tool.stats.prover_calls > 0, name
        assert len(predicates) > 0, name


def test_partition_invariant(table2_results):
    _, _, _, check = table2_results["partition"]
    cubes = check.invariant_cubes("partition", label="L")
    assert cubes
    for cube in cubes:
        assert cube["curr==0"] is False
        assert cube["curr->val>v"] is True


def test_listfind_found_invariant(table2_results):
    _, _, _, check = table2_results["listfind"]
    cubes = check.invariant_cubes("listfind", label="FOUND")
    assert cubes
    for cube in cubes:
        assert cube["curr==0"] is False
        assert cube["curr->val==v"] is True
        assert cube["found==1"] is True


def test_kmp_bounds_invariants_discharged(table2_results):
    # The PCC loop invariants 0 <= q <= m and 0 <= k < m hold: every
    # assert in kmp is discharged by the abstraction.
    _, _, _, check = table2_results["kmp"]
    assert check.assertion_failures == []
    inv = {
        name: value
        for cube in check.invariant_cubes("kmp_match", label="INV_M")
        for name, value in cube.items()
    }
    assert inv["q>=0"] is True and inv["q<=m"] is True


def test_qsort_bounds_invariants_discharged(table2_results):
    _, _, _, check = table2_results["qsort"]
    assert check.assertion_failures == []
    cubes = check.invariant_cubes("split", label="INV_S")
    for cube in cubes:
        assert cube["i>=lo"] is True
        assert cube["j<=hi+1"] is True


def test_reverse_runs_and_dominates_prover_calls(table2_results):
    # The paper's qualitative claim: reverse pays for all-pairs aliasing
    # and needs far more prover calls than the list examples.
    _, _, reverse_tool, check = table2_results["reverse"]
    _, _, partition_tool, _ = table2_results["partition"]
    _, _, listfind_tool, _ = table2_results["listfind"]
    assert reverse_tool.stats.prover_calls > 5 * partition_tool.stats.prover_calls
    assert reverse_tool.stats.prover_calls > 5 * listfind_tool.stats.prover_calls
    # END is reachable (the procedure terminates in the abstraction).
    assert check.invariant_cubes("mark", label="END")


def test_statement_counts_sane():
    for study in all_table2_programs():
        program = parse_c_program(study.source, study.name)
        assert program.statement_count() >= 10, study.name


# -- drivers -----------------------------------------------------------------

LOCK = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
IRP = SafetySpec.complete_exactly_once("IoCompleteRequest")


@pytest.mark.parametrize("driver_name", [d.name for d in all_drivers()])
def test_driver_lock_verdicts(driver_name):
    driver = get_driver(driver_name)
    result = check_property(driver.source, LOCK, entry=driver.entry, max_iterations=8)
    assert result.verdict == driver.expected["lock"], driver_name


@pytest.mark.parametrize("driver_name", [d.name for d in all_drivers()])
def test_driver_irp_verdicts(driver_name):
    driver = get_driver(driver_name)
    result = check_property(driver.source, IRP, entry=driver.entry, max_iterations=8)
    assert result.verdict == driver.expected["irp"], driver_name


def test_floppy_bug_trace_is_concrete():
    # The reported floppy IRP trace must be genuinely feasible: SLAM never
    # reports spurious error paths.
    driver = get_driver("floppy")
    result = check_property(driver.source, IRP, entry=driver.entry, max_iterations=8)
    assert result.verdict == "unsafe"
    lines = result.error_trace_lines()
    assert lines
    # The double completion appears twice on the path.
    completions = [line for line in lines if "IoCompleteRequest" in line]
    assert len(completions) >= 2


def test_driver_convergence_within_few_iterations():
    # Section 6.1: "it usually converges in a few iterations".
    for driver in all_drivers():
        for spec in (LOCK, IRP):
            result = check_property(
                driver.source, spec, entry=driver.entry, max_iterations=8
            )
            assert result.iterations <= 5, (driver.name, spec.name)


# -- the filter-driver handoff property ----------------------------------------


def test_kbfiltr_handoff_safe():
    driver = get_driver("kbfiltr")
    spec = SafetySpec.complete_or_forward("IoCompleteRequest", "IoCallDriver")
    result = check_property(driver.source, spec, entry=driver.entry, max_iterations=8)
    assert result.verdict == driver.expected["handoff"]


def test_kbfiltr_complete_and_forward_bug_found():
    driver = get_driver("kbfiltr")
    # Introduce the classic filter bug: complete locally AND forward.
    buggy = driver.source.replace(
        """        key_count = key_count + 1;
        IoCompleteRequest();
        return 0;""",
        """        key_count = key_count + 1;
        IoCompleteRequest();
        status = IoCallDriver();
        return 0;""",
    )
    assert buggy != driver.source
    spec = SafetySpec.complete_or_forward("IoCompleteRequest", "IoCallDriver")
    result = check_property(buggy, spec, entry=driver.entry, max_iterations=8)
    assert result.verdict == "unsafe"


def test_kbfiltr_dropped_request_bug_found():
    driver = get_driver("kbfiltr")
    # Neither completing nor forwarding (dropping the IRP) is also a bug:
    # the forbidden final state catches it.
    buggy = driver.source.replace(
        """    /* pass through to the class driver below us */
    status = IoCallDriver();
    return status;""",
        """    status = 0;
    return status;""",
    )
    assert buggy != driver.source
    spec = SafetySpec.complete_or_forward("IoCompleteRequest", "IoCallDriver")
    result = check_property(buggy, spec, entry=driver.entry, max_iterations=8)
    assert result.verdict == "unsafe"


def test_toaster_lock_held_on_early_return_bug():
    driver = get_driver("toaster")
    # Classic bug: error path returns while still holding the spin lock.
    buggy = driver.source.replace(
        """    KeAcquireSpinLock();
    if (ext->removed == 1) {
        status = -1;
    } else {""",
        """    KeAcquireSpinLock();
    if (ext->removed == 1) {
        IoCompleteRequest();
        return -1;
    } else {""",
    )
    assert buggy != driver.source
    result = check_property(buggy, LOCK, entry=driver.entry, max_iterations=8)
    # Releasing is skipped, so a later acquire double-acquires... with a
    # single-dispatch harness the violation shows as acquiring again after
    # the dangling return is NOT observable; the next acquire happens only
    # in another dispatch.  The property that catches this directly is a
    # forbidden final state: still Locked at return.
    final_spec = SafetySpec(
        "lock-held-at-exit", ["Unlocked", "Locked"], "Unlocked",
        final_states=["Locked"],
    )
    final_spec.on("Unlocked", "KeAcquireSpinLock", "Locked")
    final_spec.on("Locked", "KeReleaseSpinLock", "Unlocked")
    final_spec.error_on("Locked", "KeAcquireSpinLock")
    final_spec.error_on("Unlocked", "KeReleaseSpinLock")
    held = check_property(buggy, final_spec, entry=driver.entry, max_iterations=8)
    assert held.verdict == "unsafe"
    # And the correct driver passes the stronger property too.
    clean = check_property(
        driver.source, final_spec, entry=driver.entry, max_iterations=8
    )
    assert clean.verdict == "safe"
    assert result.verdict in ("safe", "unsafe")  # documented above
