"""The incremental theory engine against the stateless reference.

- **Differential** — a stateful :class:`IncrementalTheory` session fed a
  stream of overlapping literal sets (hypothesis-generated push/pop
  interleavings: grow, shrink, replace, reshuffle) answers every query
  exactly like a fresh ``check_literals`` call: verdict, ``exact`` flag,
  and (for fragment queries) the entailed-equality pairs against a
  ``LinearSolver.implies_eq`` reference.
- **Order independence** — verdicts are a pure function of the literal
  *set*: any permutation of the query stream, and any permutation of the
  literals inside a query, produce the same answers (the sweep-order
  property the AllSAT catalog relies on).
- **DBM units** — incremental closure equals from-scratch closure,
  push/pop restores every bound, negative cycles flip the flag.
- **Wiring** — end-to-end byte-identity of the abstraction with the
  engine on vs ``--no-theory-incremental`` (flag + counters), the
  discharger's distinct stats key, auto ``--jobs`` resolution, and an
  injected-engine-bug meta-test proving the fuzz oracle's
  ``theory-divergence`` check catches a corrupted fast path.
"""

import io
import itertools
import random

from hypothesis import given, settings, strategies as st

from repro import C2bp, parse_c_program, parse_predicate_file
from repro.boolprog.printer import print_bool_program
from repro.cfront import parse_expression
from repro.core import C2bpOptions
from repro.core.cubes import CubeSearch
from repro.core import pool as pool_module
from repro.engine import EngineContext
from repro.fuzz.gen import ProgramGenerator
from repro.fuzz.oracle import KIND_THEORY, SoundnessOracle
from repro.programs import get_program
from repro.prover import Prover
from repro.prover import theory as theory_module
from repro.prover.dbm import ZERO, DifferenceBounds
from repro.prover.linarith import LinearSolver, linearize
from repro.prover.theory import (
    IncrementalTheory,
    canonical_literals,
    check_literals,
)

# -- literal generators --------------------------------------------------------------

_VARS = [("var", name) for name in "wxyz"]


@st.composite
def fragment_terms(draw):
    """Terms whose atoms stay in the difference-bound fragment."""
    base = draw(st.sampled_from(_VARS + [("num", draw(st.integers(-3, 3)))]))
    if draw(st.booleans()):
        return ("app", "+", (base, ("num", draw(st.integers(-2, 2)))))
    return base


@st.composite
def mixed_terms(draw):
    """Fragment terms plus uninterpreted applications (fallback path)."""
    if draw(st.integers(0, 3)) == 0:
        return ("app", "f", (draw(st.sampled_from(_VARS)),))
    return draw(fragment_terms())


def _literals(terms):
    return st.tuples(
        st.tuples(st.sampled_from(["le", "eq"]), terms, terms),
        st.booleans(),
    ).map(lambda pair: ((pair[0][0], pair[0][1], pair[0][2]), pair[1]))


@st.composite
def literal_streams(draw, terms, max_sets=6, max_literals=6):
    """A stream of overlapping literal sets: each set is the previous one
    grown, shrunk, or replaced — the push/pop shapes the engine sees."""
    stream = []
    current = draw(st.lists(_literals(terms), min_size=1, max_size=max_literals))
    stream.append(list(current))
    for _ in range(draw(st.integers(1, max_sets - 1))):
        move = draw(st.integers(0, 3))
        if move == 0 or not current:
            current = draw(
                st.lists(_literals(terms), min_size=1, max_size=max_literals)
            )
        elif move == 1 and len(current) > 1:
            current = list(current)
            del current[draw(st.integers(0, len(current) - 1))]
        else:
            current = list(current) + [draw(_literals(terms))]
        shuffled = list(current)
        draw(st.randoms(use_true_random=False)).shuffle(shuffled)
        stream.append(shuffled)
    return stream


# -- the hypothesis differentials -----------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(literal_streams(fragment_terms()))
def test_incremental_matches_stateless_on_fragment_streams(stream):
    session = IncrementalTheory()
    for literals in stream:
        incremental = session.check(literals)
        stateless = check_literals(literals)
        assert incremental.consistent == stateless.consistent, literals
        assert incremental.exact == stateless.exact, literals
    # Every query classified into the fragment: no fallbacks taken.
    assert session.fallback_queries == 0
    assert session.delta_queries == len(stream)


@settings(max_examples=80, deadline=None)
@given(literal_streams(mixed_terms()))
def test_incremental_matches_stateless_on_mixed_streams(stream):
    """Uninterpreted applications push queries down the fallback path;
    answers must still match the stateless reference (including cache
    hits on repeated sets)."""
    session = IncrementalTheory()
    for literals in stream:
        for probe in (literals, literals):  # repeat: exercises the cache
            incremental = session.check(probe)
            stateless = check_literals(probe)
            assert incremental.consistent == stateless.consistent, literals
            assert incremental.exact == stateless.exact, literals


def _reference_equalities(literals):
    """Entailed equalities over the literal set's difference-bound nodes,
    computed by the stateless ``LinearSolver`` (disequalities excluded —
    the engine's documented equality scope)."""
    solver = LinearSolver()
    nodes = set()
    for (kind, t1, t2), polarity in canonical_literals(literals):
        diff = linearize(t1).minus(linearize(t2))
        nodes |= set(diff.coeffs)
        if kind == "le":
            if polarity:
                solver.assert_le_terms(t1, t2)
            else:
                solver.assert_lt_terms(t2, t1)
        elif polarity:
            solver.assert_eq_terms(t1, t2)
    pairs = set()
    ordered = sorted(nodes)
    for i, u in enumerate(ordered):
        for v in ordered[i + 1 :]:
            if solver.implies_eq(u, v):
                pairs.add((u, v))
    return frozenset(pairs)


@settings(max_examples=80, deadline=None)
@given(literal_streams(fragment_terms(), max_sets=4, max_literals=5))
def test_entailed_equalities_match_linear_solver(stream):
    session = IncrementalTheory()
    for literals in stream:
        result = session.check(literals, want_equalities=True)
        if not result.consistent:
            continue
        reference = _reference_equalities(literals)
        assert result.equalities == reference, literals


@settings(max_examples=60, deadline=None)
@given(
    literal_streams(fragment_terms(), max_sets=4, max_literals=5),
    st.randoms(use_true_random=False),
)
def test_sweep_order_independence(stream, rng):
    """Answers are independent of both the order of queries in the
    stream and the literal order inside each query — two sessions fed
    permuted streams agree set-by-set (the property that makes the
    AllSAT sweep's model order irrelevant to the theory verdicts)."""
    forward = IncrementalTheory()
    shuffled_session = IncrementalTheory()
    answers = {}
    for literals in stream:
        key = canonical_literals(literals)
        result = forward.check(literals)
        answers[key] = (result.consistent, result.exact)
    permuted = list(stream)
    rng.shuffle(permuted)
    for literals in permuted:
        shuffled = list(literals)
        rng.shuffle(shuffled)
        result = shuffled_session.check(shuffled)
        key = canonical_literals(literals)
        assert (result.consistent, result.exact) == answers[key]


# -- targeted engine cases ------------------------------------------------------------


def test_fragment_unsat_chains():
    session = IncrementalTheory()
    x, y, z = ("var", "x"), ("var", "y"), ("var", "z")
    # x <= y, y <= z, z <= x-1: negative cycle.
    lits = [
        (("le", x, y), True),
        (("le", y, z), True),
        (("le", z, ("app", "+", (x, ("num", -1)))), True),
    ]
    assert not session.check(lits).consistent
    # Drop the cycle-closing edge: satisfiable again (pop path).
    assert session.check(lits[:2]).consistent
    # Disequality against a pinned difference: x==y via bounds, x != y.
    lits = [
        (("le", x, y), True),
        (("le", y, x), True),
        (("eq", x, y), False),
    ]
    result = session.check(lits)
    assert not result.consistent and result.exact
    # The stateless reference agrees on all of it.
    assert not check_literals(lits).consistent


def test_fragment_entailed_equalities_through_constants():
    session = IncrementalTheory()
    x, y = ("var", "x"), ("var", "y")
    lits = [
        (("eq", x, ("num", 3)), True),
        (("le", y, ("num", 3)), True),
        (("le", ("num", 3), y), True),
    ]
    result = session.check(lits, want_equalities=True)
    assert result.consistent
    assert (x, y) in result.equalities


def test_session_counters_track_delta_and_cache_paths():
    session = IncrementalTheory()
    x = ("var", "x")
    f_x = ("app", "f", (x,))
    session.check([(("le", x, ("num", 3)), True)])
    assert session.delta_queries == 1
    fallback = [(("eq", f_x, ("num", 1)), True)]
    session.check(fallback)
    session.check(fallback)
    counters = session.counters()
    assert session.fallback_queries == 2
    assert counters["theory_cache_hits"] == 1
    assert counters["theory_delta_queries"] == 1
    assert counters["time_in_theory_closure"] >= 0.0
    assert counters["time_in_theory_cache"] > 0.0


# -- DBM units ------------------------------------------------------------------------


def _random_edges(rng, nodes, count):
    return [
        (rng.choice(nodes), rng.choice(nodes), rng.randint(-4, 4))
        for _ in range(count)
    ]


def test_dbm_incremental_closure_matches_floyd_warshall():
    rng = random.Random(7)
    nodes = [("var", name) for name in "abcd"] + [ZERO]
    inf = float("inf")
    for _ in range(60):
        edges = _random_edges(rng, nodes, rng.randint(1, 8))
        dbm = DifferenceBounds()
        dbm.push()
        for u, v, c in edges:
            dbm.add(u, v, c)
        # From-scratch Floyd-Warshall over the same edge set.
        dist = {(i, j): 0 if i == j else inf for i in nodes for j in nodes}
        for u, v, c in edges:
            dist[(u, v)] = min(dist[(u, v)], c)
        for k in nodes:
            for i in nodes:
                for j in nodes:
                    through = dist[(i, k)] + dist[(k, j)]
                    if through < dist[(i, j)]:
                        dist[(i, j)] = through
        negative = any(dist[(i, i)] < 0 for i in nodes)
        assert dbm.inconsistent == negative, edges
        if not negative:
            for i in nodes:
                for j in nodes:
                    if i == j:
                        continue
                    expected = None if dist[(i, j)] == inf else dist[(i, j)]
                    assert dbm.bound(i, j) == expected, (edges, i, j)


def test_dbm_push_pop_restores_bounds_and_flag():
    x, y = ("var", "x"), ("var", "y")
    dbm = DifferenceBounds()
    dbm.push()
    dbm.add(x, y, 3)
    before = dict(dbm._dist)
    dbm.push()
    dbm.add(y, x, -5)  # negative cycle: 3 + (-5) < 0
    assert dbm.inconsistent
    dbm.pop()
    assert not dbm.inconsistent
    assert dict(dbm._dist) == before
    dbm.push()
    dbm.add(y, x, -3)  # tight cycle: forces x - y == 3
    assert not dbm.inconsistent
    assert dbm.bound(x, y) == 3 and dbm.bound(y, x) == -3
    assert not dbm.entailed_eq(x, y)
    dbm.add(x, y, 0)
    assert dbm.inconsistent
    dbm.pop()
    assert dict(dbm._dist) == before


def test_dbm_entailed_eq():
    x, y = ("var", "x"), ("var", "y")
    dbm = DifferenceBounds()
    dbm.push()
    dbm.add(x, y, 0)
    assert not dbm.entailed_eq(x, y)
    dbm.add(y, x, 0)
    assert dbm.entailed_eq(x, y)
    assert dbm.entailed_eq(x, x)


# -- end-to-end wiring ----------------------------------------------------------------


def _abstract(study, **option_kwargs):
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    with EngineContext(options=C2bpOptions(**option_kwargs)) as context:
        tool = C2bp(program, predicates, context=context)
        text = print_bool_program(tool.run())
        return text, context.prover.stats


def test_abstraction_byte_identical_and_counters_engage():
    study = get_program("partition")
    on_text, on_stats = _abstract(study, theory_incremental=True)
    off_text, off_stats = _abstract(study, theory_incremental=False)
    assert on_text == off_text
    assert on_stats.theory_delta_queries > 0
    assert off_stats.theory_delta_queries == 0
    assert off_stats.time_in_theory_closure == 0.0
    snapshot = on_stats.snapshot()
    for key in (
        "theory_delta_queries",
        "theory_cache_hits",
        "allsat_sweep_theory_deltas",
        "queries_discharged",
        "time_in_theory_closure",
        "time_in_theory_cache",
    ):
        assert key in snapshot


def test_cli_no_theory_incremental_flag(tmp_path):
    from repro.cli import main

    study = get_program("partition")
    c_path = tmp_path / "p.c"
    p_path = tmp_path / "p.preds"
    c_path.write_text(study.source)
    p_path.write_text(study.predicate_text)
    outputs = {}
    for flags in ((), ("--no-theory-incremental",)):
        out = io.StringIO()
        code = main(
            ["abstract", str(c_path), str(p_path), *flags], out=out
        )
        assert code == 0
        outputs[flags] = out.getvalue().rsplit("//", 1)[0]
    assert outputs[()] == outputs[("--no-theory-incremental",)]


class _AlwaysDischarger:
    def __init__(self):
        self.calls = 0

    def decide(self, exprs, goal):
        self.calls += 1
        return True


def test_discharged_queries_use_distinct_stats_key():
    """A discharger hit is tallied under ``queries_discharged`` and never
    reaches the prover: no query, no call, no generalize time."""
    prover = Prover()
    search = CubeSearch(
        prover,
        C2bpOptions(syntactic_heuristics=False),
        discharger=_AlwaysDischarger(),
    )
    session = prover.cube_session([parse_expression("x > 0")], parse_expression("x > 1"))
    result, core = search._decide(session, ((0, True),))
    assert result is True and core is None
    assert prover.stats.queries_discharged == 1
    assert prover.stats.queries == 0
    assert prover.stats.calls == 0
    assert prover.stats.time_in_generalize == 0.0


# -- auto jobs ------------------------------------------------------------------------


def test_auto_jobs_resolution(monkeypatch):
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
    assert pool_module.auto_jobs() == 1
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 2)
    assert pool_module.auto_jobs() == 2
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 16)
    assert pool_module.auto_jobs() == pool_module.MAX_AUTO_JOBS
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: None)
    assert pool_module.auto_jobs() == 1


def test_engine_context_resolves_auto_jobs(monkeypatch):
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 8)
    with EngineContext(options=C2bpOptions(jobs=0)) as context:
        assert context.options.jobs == pool_module.MAX_AUTO_JOBS
    # Explicit job counts pass through untouched.
    with EngineContext(options=C2bpOptions(jobs=1)) as context:
        assert context.options.jobs == 1
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
    with EngineContext(options=C2bpOptions(jobs=0)) as context:
        assert context.options.jobs == 1
    assert C2bpOptions().jobs == 0  # the default asks for auto-selection


# -- oracle coverage ------------------------------------------------------------------


def test_oracle_catches_injected_theory_bug(monkeypatch):
    """A fast path that misreports fragment UNSAT as SAT corrupts the
    sweep catalog and the cube verdicts; the oracle must flag it with
    the theory-specific kind (the stateless config stays correct)."""
    real = theory_module.IncrementalTheory._decide_fragment

    def lying_decide(self, want_equalities):
        result = real(self, want_equalities)
        if not result.consistent:
            return theory_module.TheoryResult(True, True)
        return result

    monkeypatch.setattr(
        theory_module.IncrementalTheory, "_decide_fragment", lying_decide
    )
    oracle = SoundnessOracle()
    for seed in range(8):
        case = ProgramGenerator("theory").generate(seed)
        report = oracle.check(case, check_jobs=False)
        if report.kind == KIND_THEORY:
            return
    raise AssertionError("no generated case exposed the injected theory bug")
