"""Unit tests for the SAT core, EUF, and linear arithmetic solvers."""

from fractions import Fraction

from repro.prover.euf import CongruenceClosure
from repro.prover.linarith import LinearSolver, LinExpr, linearize
from repro.prover.sat import SatSolver
from repro.prover.terms import app, num, var


# -- SAT ------------------------------------------------------------------


def test_sat_empty_is_satisfiable():
    assert SatSolver().solve().sat


def test_sat_single_unit():
    solver = SatSolver()
    solver.add_clause([1])
    result = solver.solve()
    assert result.sat
    assert result.model[1] is True


def test_sat_contradictory_units():
    solver = SatSolver()
    solver.add_clause([1])
    solver.add_clause([-1])
    assert not solver.solve().sat


def test_sat_simple_implication_chain():
    solver = SatSolver()
    solver.add_clause([-1, 2])
    solver.add_clause([-2, 3])
    solver.add_clause([1])
    result = solver.solve()
    assert result.sat
    assert result.model[2] is True and result.model[3] is True


def test_sat_unsat_triangle():
    solver = SatSolver()
    solver.add_clause([1, 2])
    solver.add_clause([1, -2])
    solver.add_clause([-1, 2])
    solver.add_clause([-1, -2])
    assert not solver.solve().sat


def test_sat_tautological_clause_ignored():
    solver = SatSolver()
    solver.add_clause([1, -1])
    assert solver.solve().sat


def test_sat_pigeonhole_3_into_2_unsat():
    # Pigeons p in {1,2,3}, holes h in {1,2}; var(p,h) = 2*(p-1)+h.
    def v(p, h):
        return 2 * (p - 1) + h

    solver = SatSolver()
    for p in (1, 2, 3):
        solver.add_clause([v(p, 1), v(p, 2)])
    for h in (1, 2):
        for p1 in (1, 2, 3):
            for p2 in range(p1 + 1, 4):
                solver.add_clause([-v(p1, h), -v(p2, h)])
    assert not solver.solve().sat


def test_sat_random_instances_match_bruteforce():
    import itertools
    import random

    rng = random.Random(7)
    for _ in range(40):
        num_vars = rng.randint(1, 6)
        clauses = []
        for _ in range(rng.randint(1, 12)):
            clause = [
                rng.choice([1, -1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))
            ]
            clauses.append(clause)
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        got = solver.solve().sat
        expected = any(
            all(
                any(
                    (lit > 0) == assignment[abs(lit) - 1]
                    for lit in clause
                )
                for clause in clauses
            )
            for assignment in itertools.product([False, True], repeat=num_vars)
        )
        assert got == expected, (clauses, got, expected)


# -- EUF ------------------------------------------------------------------


def test_euf_reflexive():
    cc = CongruenceClosure()
    assert cc.are_equal(var("x"), var("x"))


def test_euf_transitivity():
    cc = CongruenceClosure()
    cc.merge(var("a"), var("b"))
    cc.merge(var("b"), var("c"))
    assert cc.are_equal(var("a"), var("c"))


def test_euf_congruence_unary():
    cc = CongruenceClosure()
    cc.merge(var("x"), var("y"))
    assert cc.are_equal(app("f", var("x")), app("f", var("y")))


def test_euf_congruence_nested():
    cc = CongruenceClosure()
    cc.merge(var("x"), var("y"))
    assert cc.are_equal(
        app("f", app("g", var("x"))), app("f", app("g", var("y")))
    )


def test_euf_congruence_binary_one_arg_differs():
    cc = CongruenceClosure()
    cc.merge(var("x"), var("y"))
    assert not cc.are_equal(app("f", var("x"), var("a")), app("f", var("y"), var("b")))


def test_euf_disequality_conflict():
    cc = CongruenceClosure()
    assert cc.add_disequality(var("a"), var("b"))
    assert not cc.merge(var("a"), var("b"))
    assert not cc.consistent


def test_euf_distinct_numerals_conflict():
    cc = CongruenceClosure()
    cc.merge(var("x"), num(1))
    assert not cc.merge(var("x"), num(2))


def test_euf_numeral_propagates_through_class():
    cc = CongruenceClosure()
    cc.merge(var("x"), var("y"))
    cc.merge(var("y"), num(5))
    assert cc.known_numeral(var("x")) == 5


def test_euf_classic_f3_example():
    # f(f(f(a))) = a and f(f(f(f(f(a))))) = a imply f(a) = a.
    def f(t):
        return app("f", t)

    a = var("a")
    cc = CongruenceClosure()
    cc.add_term(f(f(f(f(f(a))))))
    cc.merge(f(f(f(a))), a)
    cc.merge(f(f(f(f(f(a))))), a)
    assert cc.are_equal(f(a), a)


# -- linear arithmetic -----------------------------------------------------


def _le(solver, t1, t2):
    solver.assert_le_terms(t1, t2)


def test_linarith_trivially_sat():
    assert LinearSolver().check()


def test_linarith_simple_bounds_sat():
    solver = LinearSolver()
    _le(solver, var("x"), num(10))
    _le(solver, num(0), var("x"))
    assert solver.check()


def test_linarith_conflicting_bounds_unsat():
    solver = LinearSolver()
    _le(solver, var("x"), num(3))
    _le(solver, num(5), var("x"))
    assert not solver.check()


def test_linarith_strict_adjacent_bounds_unsat():
    # x < 5 and x > 4 has no integer solution (but a rational one).
    solver = LinearSolver()
    solver.assert_lt_terms(var("x"), num(5))
    solver.assert_lt_terms(num(4), var("x"))
    assert not solver.check()


def test_linarith_transitive_chain_unsat():
    solver = LinearSolver()
    solver.assert_lt_terms(var("x"), var("y"))
    solver.assert_lt_terms(var("y"), var("z"))
    _le(solver, var("z"), var("x"))
    assert not solver.check()


def test_linarith_equalities_gaussian():
    solver = LinearSolver()
    solver.assert_eq_terms(var("x"), app("+", var("y"), num(1)))
    solver.assert_eq_terms(var("y"), num(4))
    _le(solver, var("x"), num(4))
    assert not solver.check()


def test_linarith_integral_tightening():
    # 2x <= 5 and 2x >= 5 has the rational solution x = 5/2 but no integer
    # one; tightening rounds the bounds apart.
    two_x = app("*", num(2), var("x"))
    solver = LinearSolver()
    solver.assert_le_terms(two_x, num(5))
    solver.assert_le_terms(num(5), two_x)
    assert not solver.check()


def test_linarith_opaque_terms_as_variables():
    # deref(p) behaves like a variable in arithmetic.
    d = app("deref", var("p"))
    solver = LinearSolver()
    solver.assert_lt_terms(var("v"), d)  # v < *p
    _le(solver, d, var("v"))  # *p <= v
    assert not solver.check()


def test_linarith_implies_eq():
    solver = LinearSolver()
    _le(solver, var("x"), var("y"))
    _le(solver, var("y"), var("x"))
    assert solver.implies_eq(var("x"), var("y"))
    assert not solver.implies_eq(var("x"), num(0))


def test_linarith_paper_example_x_eq_2_implies_x_lt_4():
    solver = LinearSolver()
    solver.assert_eq_terms(var("x"), num(2))
    solver.assert_lt_terms(num(4) if False else var("x"), num(4))
    assert solver.check()
    # And the refutation direction: x == 2 && x >= 4 is unsat.
    refute = LinearSolver()
    refute.assert_eq_terms(var("x"), num(2))
    refute.assert_le_terms(num(4), var("x"))
    assert not refute.check()


def test_linearize_combines_coefficients():
    expr = linearize(app("+", var("x"), app("-", var("x"), num(3))))
    assert expr.coeffs == {var("x"): Fraction(2)}
    assert expr.const == Fraction(-3)


def test_linearize_nonlinear_product_opaque():
    expr = linearize(app("*", var("x"), var("y")))
    assert list(expr.coeffs) == [app("*", var("x"), var("y"))]


def test_linexpr_cancellation():
    expr = LinExpr()
    expr.add_term(var("x"), Fraction(2))
    expr.add_term(var("x"), Fraction(-2))
    assert expr.is_constant
