"""Regression corpus: every shrunk failure the fuzzer ever checked in
replays cleanly through the full oracle — all engine configurations
(fast/legacy Bebop, explicit-state, incremental/fresh cubes, serial and
``--jobs``) plus the Theorem-1 trace replay."""

import os

import pytest

from repro.fuzz import SoundnessOracle, load_corpus

pytestmark = pytest.mark.fuzz_smoke

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    """The corpus ships with at least the call/global-return regression
    and the shrunk BMC phi-merge reproducer."""
    names = [case.name for case in CORPUS]
    assert "call-global-return-binding" in names
    assert "bmc-phi-merge-first-edge" in names


@pytest.mark.parametrize("case", CORPUS, ids=lambda case: case.name)
def test_corpus_entry_replays_clean(case):
    report = SoundnessOracle().check(case, check_jobs=True)
    assert report.ok, "%s: %s" % (report.kind, report.detail)
    assert report.replays > 0 or report.assert_trips > 0
