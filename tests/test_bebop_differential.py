"""Random differential testing: the symbolic (BDD) Bebop engine against
the explicit-state engine on generated boolean programs, plus tests for
the reporting APIs."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bebop import Bebop, ExplicitEngine
from repro.boolprog import (
    BAssign,
    BAssume,
    BChoose,
    BConst,
    BIf,
    BNondet,
    BNot,
    BProcedure,
    BProgram,
    BSkip,
    BVar,
    BWhile,
    parse_bool_program,
    validate_bool_program,
)

_VARS = ["a", "b", "c"]


@st.composite
def bool_exprs(draw, depth=0):
    choice = draw(st.integers(0, 4 if depth < 2 else 1))
    if choice == 0:
        return BVar(draw(st.sampled_from(_VARS)))
    if choice == 1:
        return BConst(draw(st.booleans()))
    if choice == 2:
        return BNot(draw(bool_exprs(depth=depth + 1)))
    from repro.boolprog import BAnd, BOr

    left = draw(bool_exprs(depth=depth + 1))
    right = draw(bool_exprs(depth=depth + 1))
    return BAnd(left, right) if choice == 3 else BOr(left, right)


@st.composite
def bool_stmts(draw, depth=0):
    choice = draw(st.integers(0, 4 if depth < 2 else 2))
    if choice == 0:
        target = draw(st.sampled_from(_VARS))
        kind = draw(st.integers(0, 2))
        if kind == 0:
            value = draw(bool_exprs())
        elif kind == 1:
            from repro.boolprog import BUnknown

            value = BUnknown()
        else:
            value = BChoose(draw(bool_exprs()), draw(bool_exprs()))
        return BAssign([target], [value])
    if choice == 1:
        return BSkip()
    if choice == 2:
        return BAssume(draw(bool_exprs()))
    if choice == 3:
        then_body = draw(st.lists(bool_stmts(depth=depth + 1), min_size=0, max_size=2))
        else_body = draw(st.lists(bool_stmts(depth=depth + 1), min_size=0, max_size=2))
        cond = BNondet() if draw(st.booleans()) else draw(bool_exprs())
        return BIf(cond, then_body, else_body)
    body = draw(st.lists(bool_stmts(depth=depth + 1), min_size=0, max_size=2))
    return BWhile(BNondet(), body)


@st.composite
def bool_programs(draw):
    body = draw(st.lists(bool_stmts(), min_size=1, max_size=5))
    tail = BSkip()
    tail.labels.append("L")
    program = BProgram()
    program.add_procedure(BProcedure("main", [], list(_VARS), 0, body + [tail]))
    return program


def _expand(cube, names):
    free = [n for n in names if n not in cube]
    for values in itertools.product([False, True], repeat=len(free)):
        assignment = dict(cube)
        assignment.update(zip(free, values))
        yield tuple(assignment[n] for n in names)


@settings(max_examples=60, deadline=None)
@given(bool_programs())
def test_symbolic_equals_explicit_on_random_programs(program):
    validate_bool_program(program)
    symbolic = Bebop(program).run()
    got = set()
    for cube in symbolic.invariant_cubes("main", label="L"):
        got.update(_expand(cube, _VARS))

    explicit = ExplicitEngine(program, max_configs=200_000)
    valuations = explicit.reachable_valuations()
    graph = explicit.graphs["main"]
    node = graph.node_for_label("L")
    expected = set()
    for _globals, locals_vals in valuations.get(("main", node.uid), set()):
        expected.add(locals_vals)
    assert got == expected


# -- reporting APIs --------------------------------------------------------------


def test_all_invariants_and_report():
    program = parse_bool_program(
        """
        void helper() {
            H: skip;
        }
        void main() {
            decl a;
            a = 1;
            L1: skip;
            a = 0;
            L2: skip;
            helper();
        }
        """
    )
    result = Bebop(program).run()
    invariants = result.all_invariants()
    assert ("main", "L1") in invariants and ("main", "L2") in invariants
    assert invariants[("main", "L1")] == "{a}"
    assert invariants[("main", "L2")] == "!{a}"
    assert ("helper", "H") in invariants
    report = result.format_report()
    assert "main/L1" in report and "BDD nodes" in report


def test_statistics_shapes():
    program = parse_bool_program(
        """
        bool id(p) { return p; }
        void main() { decl a; a = id(1); }
        """
    )
    result = Bebop(program).run()
    stats = result.statistics()
    assert stats["procedures"] == 2
    assert stats["worklist_steps"] > 0
    assert stats["bdd_nodes"] > 2
    assert "id" in stats["summary_nodes"]


def test_labels_listing():
    program = parse_bool_program(
        "void main() { A: skip; B: skip; }"
    )
    result = Bebop(program).run()
    assert result.labels("main") == ["A", "B"]
