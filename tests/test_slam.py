"""End-to-end tests for the SLAM toolkit: instrumentation, the CEGAR loop,
and the classic driver-style examples (including the one that needs data
refinement, the paper's motivating nPackets loop)."""

import pytest

from repro.cfront import parse_c_program
from repro.slam import SafetySpec, check_property, instrument_program
from repro.slam.instrument import STATE_VAR, stub_name


LOCK_SPEC = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")


# -- instrumentation ---------------------------------------------------------


def test_instrumentation_adds_state_and_stubs():
    program = parse_c_program(
        "void main(void) { KeAcquireSpinLock(); KeReleaseSpinLock(); }"
    )
    instrument_program(program, LOCK_SPEC)
    assert program.lookup_global(STATE_VAR) is not None
    assert STATE_VAR in program.protected_globals
    assert stub_name("KeAcquireSpinLock") in program.functions
    assert program.functions[stub_name("KeAcquireSpinLock")].is_defined


def test_instrumentation_rewrites_extern_calls():
    program = parse_c_program("void main(void) { KeAcquireSpinLock(); }")
    instrument_program(program, LOCK_SPEC)
    from repro.cfront import cast as C

    calls = [s for s in program.functions["main"].body if isinstance(s, C.CallStmt)]
    assert any(c.name == stub_name("KeAcquireSpinLock") for c in calls)
    assert not any(c.name == "KeAcquireSpinLock" for c in calls)


def test_instrumentation_keeps_defined_calls():
    program = parse_c_program(
        """
        void KeAcquireSpinLock(void) { }
        void main(void) { KeAcquireSpinLock(); }
        """
    )
    instrument_program(program, LOCK_SPEC)
    from repro.cfront import cast as C

    calls = [s for s in program.functions["main"].body if isinstance(s, C.CallStmt)]
    names = [c.name for c in calls]
    assert stub_name("KeAcquireSpinLock") in names
    assert "KeAcquireSpinLock" in names


def test_double_instrumentation_rejected():
    program = parse_c_program("void main(void) { }")
    instrument_program(program, LOCK_SPEC)
    with pytest.raises(ValueError):
        instrument_program(program, LOCK_SPEC)


# -- straightforward verdicts ---------------------------------------------------


def test_balanced_locking_is_safe():
    result = check_property(
        """
        void main(void) {
            KeAcquireSpinLock();
            KeReleaseSpinLock();
            KeAcquireSpinLock();
            KeReleaseSpinLock();
        }
        """,
        LOCK_SPEC,
    )
    assert result.verdict == "safe"


def test_double_acquire_is_unsafe():
    result = check_property(
        """
        void main(void) {
            KeAcquireSpinLock();
            KeAcquireSpinLock();
        }
        """,
        LOCK_SPEC,
    )
    assert result.verdict == "unsafe"
    assert result.error_trace_lines()


def test_release_without_acquire_is_unsafe():
    result = check_property(
        "void main(void) { KeReleaseSpinLock(); }", LOCK_SPEC
    )
    assert result.verdict == "unsafe"


def test_conditional_double_release_unsafe():
    result = check_property(
        """
        void main(void) {
            int c;
            c = *;
            KeAcquireSpinLock();
            if (c > 0) {
                KeReleaseSpinLock();
            }
            KeReleaseSpinLock();
        }
        """,
        LOCK_SPEC,
    )
    assert result.verdict == "unsafe"


def test_branch_balanced_locking_safe():
    result = check_property(
        """
        void main(void) {
            int c;
            c = *;
            KeAcquireSpinLock();
            if (c > 0) {
                KeReleaseSpinLock();
            } else {
                KeReleaseSpinLock();
            }
        }
        """,
        LOCK_SPEC,
    )
    assert result.verdict == "safe"


def test_loop_balanced_locking_safe():
    result = check_property(
        """
        void main(void) {
            int i;
            i = 0;
            while (i < 3) {
                KeAcquireSpinLock();
                KeReleaseSpinLock();
                i = i + 1;
            }
        }
        """,
        LOCK_SPEC,
    )
    assert result.verdict == "safe"


def test_locking_through_helper_procedures():
    result = check_property(
        """
        void enter(void) { KeAcquireSpinLock(); }
        void leave(void) { KeReleaseSpinLock(); }
        void main(void) {
            enter();
            leave();
            enter();
            leave();
        }
        """,
        LOCK_SPEC,
    )
    assert result.verdict == "safe"


def test_helper_double_acquire_unsafe():
    result = check_property(
        """
        void enter(void) { KeAcquireSpinLock(); }
        void main(void) {
            enter();
            enter();
        }
        """,
        LOCK_SPEC,
    )
    assert result.verdict == "unsafe"


# -- refinement-requiring example (the classic SLAM loop) ----------------------------


NPACKETS_LOOP = """
void main(void) {
    int nPackets, nPacketsOld, request;
    nPackets = 0;
    do {
        KeAcquireSpinLock();
        nPacketsOld = nPackets;
        request = *;
        if (request > 0) {
            KeReleaseSpinLock();
            nPackets = nPackets + 1;
        }
    } while (nPackets != nPacketsOld);
    KeReleaseSpinLock();
}
"""


def test_npackets_loop_needs_refinement_and_validates():
    result = check_property(NPACKETS_LOOP, LOCK_SPEC, max_iterations=8)
    assert result.verdict == "safe"
    # The initial state-only abstraction cannot prove it: the loop-exit
    # condition correlates with whether the lock was released.
    assert result.iterations >= 2
    names = {p.name for p in result.predicates.all_predicates()}
    assert any("nPackets" in name for name in names)


def test_npackets_loop_with_bug_found():
    buggy = NPACKETS_LOOP.replace(
        "KeReleaseSpinLock();\n            nPackets = nPackets + 1;",
        "nPackets = nPackets + 1;",
    )
    # Removing the release means the final release can double-release only
    # if... actually the bug here is double-ACQUIRE on the next iteration.
    result = check_property(buggy, LOCK_SPEC, max_iterations=8)
    assert result.verdict == "unsafe"


# -- IRP-style property -----------------------------------------------------------


def test_irp_double_completion_unsafe():
    spec = SafetySpec.complete_exactly_once("IoCompleteRequest")
    result = check_property(
        """
        void main(void) {
            int status;
            status = IoCompleteRequest();
            status = IoCompleteRequest();
        }
        """,
        spec,
    )
    assert result.verdict == "unsafe"


def test_irp_single_completion_safe():
    spec = SafetySpec.complete_exactly_once("IoCompleteRequest")
    result = check_property(
        """
        void main(void) {
            int status;
            status = IoCompleteRequest();
        }
        """,
        spec,
    )
    assert result.verdict == "safe"


def test_irp_must_complete_before_return():
    spec = SafetySpec.must_complete_before_return("IoCompleteRequest")
    result = check_property(
        """
        void main(int fast) {
            if (fast > 0) {
                IoCompleteRequest();
            }
        }
        """,
        spec,
    )
    # The fast == 0 path returns without completing: a genuine violation.
    assert result.verdict == "unsafe"
    fixed = check_property(
        "void main(void) { IoCompleteRequest(); }", spec
    )
    assert fixed.verdict == "safe"
