"""Tests for the boolean program AST, parser, printer, and interpreter."""

import pytest

from repro.boolprog import (
    BAssign,
    BAssume,
    BCall,
    BChoose,
    BConst,
    BIf,
    BNondet,
    BNot,
    BProcedure,
    BProgram,
    BReturn,
    BSkip,
    BUnknown,
    BVar,
    BWhile,
    BoolProgramInterpreter,
    parse_bool_program,
    print_bool_program,
)
from repro.boolprog.interp import AssumeBlocked, BoolAssertionFailure
from repro.boolprog.parser import BoolParseError


SAMPLE = """
decl g;

void main() {
    decl {x == 1}, b;
    {x == 1} = unknown();
    b = choose({x == 1}, !{x == 1});
    while (*) {
        assume(!{x == 1});
        skip;
    }
    if (*) {
        g = 1;
    } else {
        g = 0;
    }
    L:
    return;
}

bool<2> pair(p) {
    return p, !p;
}
"""


def test_parse_sample_round_trip():
    program = parse_bool_program(SAMPLE)
    text = print_bool_program(program)
    again = parse_bool_program(text)
    assert print_bool_program(again) == text


def test_parse_globals_and_procs():
    program = parse_bool_program(SAMPLE)
    assert program.globals == ["g"]
    assert set(program.procedures) == {"main", "pair"}
    assert program.procedures["pair"].returns == 2
    assert program.procedures["main"].locals == ["x == 1", "b"]


def test_braced_names_parse():
    program = parse_bool_program(SAMPLE)
    main = program.procedures["main"]
    assign = main.body[0]
    assert isinstance(assign, BAssign)
    assert assign.targets == ["x == 1"]
    assert isinstance(assign.values[0], BUnknown)


def test_choose_parses():
    program = parse_bool_program(SAMPLE)
    assign = program.procedures["main"].body[1]
    assert isinstance(assign.values[0], BChoose)


def test_label_attaches():
    program = parse_bool_program(SAMPLE)
    main = program.procedures["main"]
    labelled = [s for s in main.body if s.labels]
    assert labelled and labelled[0].labels == ["L"]


def test_empty_block_is_not_an_identifier():
    program = parse_bool_program("void f() { if (*) { } else { skip; } }")
    body = program.procedures["f"].body
    assert isinstance(body[0], BIf)
    assert body[0].then_body == []


def test_parallel_assignment_arity_checked():
    with pytest.raises(BoolParseError):
        parse_bool_program("void f() { decl a, b; a, b = 1; }")


def test_enforce_parses():
    program = parse_bool_program(
        "void f() { decl a, b; enforce !(a && b); skip; }"
    )
    assert program.procedures["f"].enforce is not None


def test_parse_error_on_garbage():
    with pytest.raises(BoolParseError):
        parse_bool_program("void f() { ??? }")


def test_expr_structural_equality():
    assert BVar("x") == BVar("x")
    assert BNot(BVar("x")) == BNot(BVar("x"))
    assert BVar("x") != BVar("y")
    assert hash(BConst(True)) == hash(BConst(True))


# -- interpreter -------------------------------------------------------------


class ScriptedChooser:
    """Returns a scripted sequence of nondeterministic decisions."""

    def __init__(self, script):
        self.script = list(script)

    def choose(self, stmt, what):
        if not self.script:
            return False
        return self.script.pop(0)


def make_program(body, locals_=(), globals_=(), returns=0, enforce=None):
    program = BProgram()
    program.globals = list(globals_)
    program.add_procedure(
        BProcedure("main", [], list(locals_), returns, body, enforce)
    )
    return program


def test_interp_assign_and_return():
    program = make_program(
        [BAssign(["a"], [BConst(True)]), BReturn([BVar("a")])],
        locals_=["a"],
        returns=1,
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([]))
    assert interp.call("main") == [True]


def test_interp_parallel_assignment_swaps():
    program = make_program(
        [
            BAssign(["a"], [BConst(True)]),
            BAssign(["b"], [BConst(False)]),
            BAssign(["a", "b"], [BVar("b"), BVar("a")]),
            BReturn([BVar("a"), BVar("b")]),
        ],
        locals_=["a", "b"],
        returns=2,
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([]))
    assert interp.call("main") == [False, True]


def test_interp_assume_blocks():
    program = make_program(
        [BAssign(["a"], [BConst(False)]), BAssume(BVar("a"))], locals_=["a"]
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([]))
    with pytest.raises(AssumeBlocked):
        interp.call("main")


def test_interp_assert_fails():
    from repro.boolprog import BAssert

    program = make_program(
        [BAssign(["a"], [BConst(False)]), BAssert(BVar("a"))], locals_=["a"]
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([]))
    with pytest.raises(BoolAssertionFailure):
        interp.call("main")


def test_interp_choose_semantics():
    # choose(pos, neg): true if pos, false if neg, scripted otherwise.
    body = [
        BAssign(["r"], [BChoose(BVar("p"), BVar("n"))]),
        BReturn([BVar("r")]),
    ]
    program = BProgram()
    program.add_procedure(BProcedure("main", ["p", "n"], ["r"], 1, body))
    interp = BoolProgramInterpreter(program, ScriptedChooser([]))
    assert interp.call("main", [True, False]) == [True]
    assert interp.call("main", [False, True]) == [False]
    # Neither: falls to the chooser (first scripted value initializes the
    # local r, the second resolves the choose).
    interp = BoolProgramInterpreter(program, ScriptedChooser([False, True]))
    assert interp.call("main", [False, False]) == [True]


def test_interp_nondet_branch_scripted():
    program = make_program(
        [
            BIf(BNondet(), [BAssign(["a"], [BConst(True)])], [BAssign(["a"], [BConst(False)])]),
            BReturn([BVar("a")]),
        ],
        locals_=["a"],
        returns=1,
    )
    # Locals get an initial nondet value (1 choice), then the branch.
    interp = BoolProgramInterpreter(program, ScriptedChooser([False, True]))
    assert interp.call("main") == [True]
    interp = BoolProgramInterpreter(program, ScriptedChooser([False, False]))
    assert interp.call("main") == [False]


def test_interp_while_loop_scripted():
    # Loop twice, then exit.
    program = make_program(
        [
            BAssign(["a"], [BConst(False)]),
            BWhile(BNondet(), [BAssign(["a"], [BNot(BVar("a"))])]),
            BReturn([BVar("a")]),
        ],
        locals_=["a"],
        returns=1,
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([False, True, True, False]))
    assert interp.call("main") == [False]


def test_interp_goto_forward():
    from repro.boolprog import BGoto

    skip = BSkip()
    skip.labels.append("end")
    program = make_program(
        [
            BAssign(["a"], [BConst(True)]),
            BGoto("end"),
            BAssign(["a"], [BConst(False)]),
            skip,
            BReturn([BVar("a")]),
        ],
        locals_=["a"],
        returns=1,
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([]))
    assert interp.call("main") == [True]


def test_interp_goto_out_of_branch():
    from repro.boolprog import BGoto

    skip = BSkip()
    skip.labels.append("end")
    program = make_program(
        [
            BAssign(["a"], [BConst(False)]),
            BIf(BNondet(), [BAssign(["a"], [BConst(True)]), BGoto("end")], []),
            BAssign(["a"], [BConst(False)]),
            skip,
            BReturn([BVar("a")]),
        ],
        locals_=["a"],
        returns=1,
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([False, True]))
    assert interp.call("main") == [True]


def test_interp_procedure_call_multi_return():
    program = BProgram()
    program.add_procedure(
        BProcedure("pair", ["p"], [], 2, [BReturn([BVar("p"), BNot(BVar("p"))])])
    )
    program.add_procedure(
        BProcedure(
            "main",
            [],
            ["a", "b"],
            2,
            [
                BCall(["a", "b"], "pair", [BConst(True)]),
                BReturn([BVar("a"), BVar("b")]),
            ],
        )
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([False, False]))
    assert interp.call("main") == [True, False]


def test_interp_enforce_blocks_bad_states():
    from repro.boolprog import BAnd

    # enforce !(a && b); assigning both true must block.
    program = make_program(
        [
            BAssign(["a"], [BConst(True)]),
            BAssign(["b"], [BConst(True)]),
        ],
        locals_=["a", "b"],
        enforce=BNot(BAnd(BVar("a"), BVar("b"))),
    )
    # Initial local values must satisfy the enforce; script picks a=F,b=F.
    interp = BoolProgramInterpreter(program, ScriptedChooser([False, False]))
    with pytest.raises(AssumeBlocked):
        interp.call("main")


def test_interp_globals_shared_across_calls():
    program = BProgram()
    program.globals = ["g"]
    program.add_procedure(
        BProcedure("setter", [], [], 0, [BAssign(["g"], [BConst(True)])])
    )
    program.add_procedure(
        BProcedure("main", [], [], 1, [BCall([], "setter", []), BReturn([BVar("g")])])
    )
    interp = BoolProgramInterpreter(program, ScriptedChooser([False]))
    assert interp.call("main") == [True]


def test_statement_count():
    program = parse_bool_program(SAMPLE)
    assert program.statement_count() >= 8
