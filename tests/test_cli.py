"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


PARTITION_C = r"""
typedef struct cell { int val; struct cell *next; } *list;
list partition(list *l, int v) {
    list curr, prev, newl, nextcurr;
    curr = *l; prev = NULL; newl = NULL;
    while (curr != NULL) {
        nextcurr = curr->next;
        if (curr->val > v) {
            if (prev != NULL) { prev->next = nextcurr; }
            if (curr == *l) { *l = nextcurr; }
            curr->next = newl;
L:          newl = curr;
        } else { prev = curr; }
        curr = nextcurr;
    }
    return newl;
}
"""

PARTITION_PREDS = """
partition
curr == NULL, prev == NULL, curr->val > v, prev->val > v
"""


@pytest.fixture
def partition_files(tmp_path):
    c_file = tmp_path / "partition.c"
    c_file.write_text(PARTITION_C)
    pred_file = tmp_path / "partition.preds"
    pred_file.write_text(PARTITION_PREDS)
    return str(c_file), str(pred_file)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_abstract_prints_boolean_program(partition_files):
    c_file, pred_file = partition_files
    code, output = run_cli(["abstract", c_file, pred_file])
    assert code == 0
    assert "void partition()" in output
    assert "{curr==0}" in output
    assert "theorem prover calls" in output


def test_check_prints_invariant(partition_files):
    c_file, pred_file = partition_files
    code, output = run_cli(
        ["check", c_file, pred_file, "--entry", "partition", "--label", "L"]
    )
    assert code == 0
    assert "{curr->val>v}" in output
    assert "all asserts discharged" in output


def test_check_reports_undischarged_asserts(tmp_path):
    c_file = tmp_path / "bad.c"
    c_file.write_text("void main(void) { int x; x = 0; assert(x > 0); }")
    pred_file = tmp_path / "bad.preds"
    pred_file.write_text("main\nx > 0\n")
    code, output = run_cli(["check", str(c_file), str(pred_file)])
    assert code == 1
    assert "not discharged" in output


def test_slam_safe_driver(tmp_path):
    c_file = tmp_path / "drv.c"
    c_file.write_text(
        "void main(void) { KeAcquireSpinLock(); KeReleaseSpinLock(); }"
    )
    code, output = run_cli(
        ["slam", str(c_file), "--lock", "KeAcquireSpinLock", "KeReleaseSpinLock"]
    )
    assert code == 0
    assert "verdict: safe" in output


def test_slam_unsafe_driver_prints_trace(tmp_path):
    c_file = tmp_path / "drv.c"
    c_file.write_text("void main(void) { KeReleaseSpinLock(); }")
    code, output = run_cli(
        ["slam", str(c_file), "--lock", "KeAcquireSpinLock", "KeReleaseSpinLock"]
    )
    assert code == 1
    assert "verdict: unsafe" in output
    assert "error trace" in output


def test_slam_requires_property(tmp_path):
    c_file = tmp_path / "drv.c"
    c_file.write_text("void main(void) { }")
    code, output = run_cli(["slam", str(c_file)])
    assert code == 2


def test_replay_reports_sound(tmp_path):
    c_file = tmp_path / "p.c"
    c_file.write_text("void main(int x) { int y; if (x > 0) { y = 1; } else { y = 2; } }")
    pred_file = tmp_path / "p.preds"
    pred_file.write_text("main\nx > 0, y == 1\n")
    code, output = run_cli(
        ["replay", str(c_file), str(pred_file), "--args", "5"]
    )
    assert code == 0
    assert "replays soundly" in output


def test_bebop_subcommand(tmp_path):
    bp_file = tmp_path / "prog.bp"
    bp_file.write_text(
        """
        void main() {
            decl a;
            a = 1;
            L: skip;
            assert(a);
        }
        """
    )
    code, output = run_cli(["bebop", str(bp_file), "--label", "L"])
    assert code == 0
    assert "no assertion failure" in output


def test_bebop_subcommand_error(tmp_path):
    bp_file = tmp_path / "prog.bp"
    bp_file.write_text("void main() { decl a; a = 0; assert(a); }")
    code, output = run_cli(["bebop", str(bp_file)])
    assert code == 1


def test_abstract_with_option_flags(partition_files):
    c_file, pred_file = partition_files
    code, output = run_cli(
        ["abstract", c_file, pred_file, "--max-cube-length", "2", "--no-cone"]
    )
    assert code == 0
    assert "void partition()" in output


def test_abstract_with_all_ablation_flags(partition_files):
    c_file, pred_file = partition_files
    code, output = run_cli(
        [
            "abstract", c_file, pred_file,
            "--max-cube-length", "2",
            "--no-cone",
            "--no-skip-unchanged",
            "--no-syntactic-heuristics",
            "--no-prover-cache",
            "--distribute-f",
            "--no-enforce",
            "--enforce-cube-length", "2",
            "--no-alias",
            "--no-invalidate-derefs",
        ]
    )
    assert code == 0
    assert "void partition()" in output


def test_slam_stats_and_trace_json(tmp_path):
    c_file = tmp_path / "drv.c"
    c_file.write_text(
        "void main(void) { KeAcquireSpinLock(); KeReleaseSpinLock(); }"
    )
    stats_file = tmp_path / "stats.json"
    trace_file = tmp_path / "trace.json"
    code, output = run_cli(
        [
            "slam", str(c_file),
            "--lock", "KeAcquireSpinLock", "KeReleaseSpinLock",
            "--stats-json", str(stats_file),
            "--trace-json", str(trace_file),
        ]
    )
    assert code == 0
    assert "answered from cache" in output
    stats = json.loads(stats_file.read_text())
    assert stats["cegar"]["verdict"] == "safe"
    assert stats["iterations"], "per-iteration records should be present"
    first = stats["iterations"][0]
    for field in ("iteration", "prover_calls", "prover_queries", "cache_hits",
                  "seconds", "predicates_skipped_dead",
                  "queries_discharged_interval", "bp_vars_eliminated",
                  "modref_summary_hits"):
        assert field in first
    # The run-wide analysis section mirrors the AnalysisStats counters.
    analysis = stats["analysis"]
    for field in ("predicates_skipped_dead", "queries_discharged_interval",
                  "bp_vars_eliminated", "modref_summary_hits",
                  "c2bp_stmts_reused", "c2bp_stmts_retranslated"):
        assert field in analysis
    assert analysis["modref_touch_queries"] > 0
    assert stats["phases"]["c2bp"]["count"] >= 1
    assert stats["prover"]["calls"] == stats["cegar"]["total_prover_calls"]
    trace = json.loads(trace_file.read_text())
    kinds = {event["kind"] for event in trace["events"]}
    assert "phase-start" in kinds and "prover-query" in kinds


def test_analysis_flags_are_accepted_and_verdict_neutral(tmp_path):
    c_file = tmp_path / "drv.c"
    c_file.write_text(
        "void main(void) { KeAcquireSpinLock(); KeReleaseSpinLock(); }"
    )
    base_args = [
        "slam", str(c_file),
        "--lock", "KeAcquireSpinLock", "KeReleaseSpinLock",
    ]
    code, baseline = run_cli(base_args)
    assert code == 0
    for flag in ("--no-analysis", "--no-live-predicates", "--no-intervals",
                 "--no-bp-dce"):
        code, output = run_cli(base_args + [flag])
        assert code == 0, output
        # Disabling any analysis pass never changes the verdict line.
        verdict = [l for l in output.splitlines() if "verdict" in l]
        assert verdict
        assert verdict == [l for l in baseline.splitlines() if "verdict" in l]


def test_check_stats_json(partition_files, tmp_path):
    c_file, pred_file = partition_files
    stats_file = tmp_path / "stats.json"
    code, _output = run_cli(
        ["check", c_file, pred_file, "--entry", "partition",
         "--stats-json", str(stats_file)]
    )
    assert code == 0
    stats = json.loads(stats_file.read_text())
    assert stats["c2bp"]["prover_calls"] > 0
    assert "bebop" in stats and stats["bebop"]["worklist_steps"] > 0
