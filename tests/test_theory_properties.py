"""Property-based validation of the theory solvers against ground truth.

- Congruence closure vs. brute-force: interpret every variable and unary
  function symbol over a small finite domain; if some interpretation
  satisfies the asserted (dis)equalities, the closure must be consistent.
- Linear arithmetic vs. brute force: if a conjunction of constraints has an
  integer solution on a small grid, Fourier-Motzkin must answer SAT.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.prover.euf import CongruenceClosure
from repro.prover.linarith import LinearSolver
from repro.prover.terms import app, num, var

# -- EUF vs brute force ----------------------------------------------------------

_EUF_VARS = ["x", "y", "z"]
_EUF_FUNCS = ["f", "g"]
_DOMAIN = (0, 1, 2)


def _terms_upto_depth2():
    terms = [var(v) for v in _EUF_VARS]
    depth1 = [app(f, t) for f in _EUF_FUNCS for t in terms]
    return terms + depth1


def _interpret(term, env, tables):
    if term[0] == "var":
        return env[term[1]]
    symbol, (arg,) = term[1], term[2]
    return tables[symbol][_interpret(arg, env, tables)]


def _satisfiable_bruteforce(equalities, disequalities):
    for values in itertools.product(_DOMAIN, repeat=len(_EUF_VARS)):
        env = dict(zip(_EUF_VARS, values))
        for f_table in itertools.product(_DOMAIN, repeat=len(_DOMAIN)):
            for g_table in itertools.product(_DOMAIN, repeat=len(_DOMAIN)):
                tables = {"f": f_table, "g": g_table}
                ok = all(
                    _interpret(a, env, tables) == _interpret(b, env, tables)
                    for a, b in equalities
                ) and all(
                    _interpret(a, env, tables) != _interpret(b, env, tables)
                    for a, b in disequalities
                )
                if ok:
                    return True
    return False


@st.composite
def euf_problems(draw):
    pool = _terms_upto_depth2()
    pairs = st.tuples(st.sampled_from(pool), st.sampled_from(pool))
    equalities = draw(st.lists(pairs, min_size=0, max_size=4))
    disequalities = draw(st.lists(pairs, min_size=0, max_size=3))
    return equalities, disequalities


@settings(max_examples=50, deadline=None)
@given(euf_problems())
def test_euf_agrees_with_bruteforce(problem):
    equalities, disequalities = problem
    cc = CongruenceClosure()
    consistent = True
    for a, b in equalities:
        consistent = cc.merge(a, b) and consistent
    for a, b in disequalities:
        consistent = cc.add_disequality(a, b) and consistent
    brute = _satisfiable_bruteforce(equalities, disequalities)
    if brute:
        # Satisfiable over the domain => the closure must not conflict.
        assert consistent
    # (The converse is not exact: a 3-element domain may be too small for
    #  some consistent problems, so we only check the sound direction.)


def test_euf_conflict_matches_bruteforce_on_forced_case():
    # x = y, f(x) != f(y): unsatisfiable over every domain.
    cc = CongruenceClosure()
    cc.merge(var("x"), var("y"))
    ok = cc.add_disequality(app("f", var("x")), app("f", var("y")))
    assert not ok
    assert not _satisfiable_bruteforce(
        [(var("x"), var("y"))],
        [(app("f", var("x")), app("f", var("y")))],
    )


# -- linear arithmetic vs brute force ------------------------------------------------

_LIN_VARS = ["a", "b"]
_GRID = list(itertools.product(range(-4, 5), repeat=len(_LIN_VARS)))


@st.composite
def linear_constraints(draw):
    constraints = []
    for _ in range(draw(st.integers(1, 5))):
        coeffs = [draw(st.integers(-3, 3)) for _ in _LIN_VARS]
        const = draw(st.integers(-6, 6))
        constraints.append((coeffs, const))
    return constraints


def _holds(constraints, point):
    for coeffs, const in constraints:
        total = sum(c * x for c, x in zip(coeffs, point)) + const
        if total > 0:  # constraint is expr <= 0
            return False
    return True


@settings(max_examples=100, deadline=None)
@given(linear_constraints())
def test_linarith_sat_whenever_grid_point_exists(constraints):
    solver = LinearSolver()
    for coeffs, const in constraints:
        expr_term = num(const)
        for coef, name in zip(coeffs, _LIN_VARS):
            expr_term = app("+", expr_term, app("*", num(coef), var(name)))
        solver.assert_le_terms(expr_term, num(0))
    if any(_holds(constraints, point) for point in _GRID):
        assert solver.check()


@settings(max_examples=100, deadline=None)
@given(linear_constraints())
def test_linarith_unsat_implies_no_grid_point(constraints):
    solver = LinearSolver()
    for coeffs, const in constraints:
        expr_term = num(const)
        for coef, name in zip(coeffs, _LIN_VARS):
            expr_term = app("+", expr_term, app("*", num(coef), var(name)))
        solver.assert_le_terms(expr_term, num(0))
    if not solver.check():
        assert not any(_holds(constraints, point) for point in _GRID)
