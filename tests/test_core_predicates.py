"""Tests for predicates and the predicate input file."""

import pytest

from repro.cfront import parse_c_program, parse_expression
from repro.core import Predicate, PredicateParseError, parse_predicate_file

PROGRAM = parse_c_program(
    """
    int locked;
    struct cell { int val; struct cell *next; };
    void acquire(void) { locked = 1; }
    int find(struct cell *p, int v) {
        int found;
        found = 0;
        while (p != NULL) {
            if (p->val == v) { found = 1; }
            p = p->next;
        }
        return found;
    }
    """
)


def test_predicate_name_is_pretty_text():
    predicate = Predicate(parse_expression("curr == NULL"), "partition")
    assert predicate.name == "curr==0"
    assert not predicate.is_global


def test_predicate_rejects_calls():
    with pytest.raises(PredicateParseError):
        Predicate(parse_expression("f(x) > 0"), "main")


def test_predicate_rejects_nondet():
    with pytest.raises(PredicateParseError):
        Predicate(parse_expression("* > 0"), "main")


def test_parse_sections():
    preds = parse_predicate_file(
        """
        global
        locked == 1

        find
        p == NULL, found == 1
        p->val == v
        """,
        PROGRAM,
    )
    assert len(preds.globals) == 1
    assert preds.globals[0].is_global
    assert len(preds.for_procedure("find")) == 3
    assert len(preds) == 4


def test_in_scope_merges_globals_and_locals():
    preds = parse_predicate_file(
        "global\nlocked == 1\n\nfind\nfound == 1\n", PROGRAM
    )
    in_scope = preds.in_scope("find")
    assert [p.name for p in in_scope] == ["locked==1", "found==1"]


def test_commas_inside_parens_not_split():
    # No function calls are allowed, but parenthesized expressions with
    # commas via indexing should survive; use a bracketed index.
    program = parse_c_program("void f(void) { int a[4]; int i; i = a[0]; }")
    preds = parse_predicate_file("f\na[i] > 0, i >= 0\n", program)
    assert len(preds.for_procedure("f")) == 2


def test_unknown_scope_rejected():
    with pytest.raises(PredicateParseError):
        parse_predicate_file("nosuch\nx == 1\n", PROGRAM)


def test_illtyped_predicate_rejected():
    with pytest.raises(PredicateParseError):
        parse_predicate_file("find\np->nofield == 1\n", PROGRAM)


def test_global_predicate_cannot_mention_locals():
    with pytest.raises(PredicateParseError):
        parse_predicate_file("global\nfound == 1\n", PROGRAM)


def test_predicate_before_header_rejected():
    with pytest.raises(PredicateParseError):
        parse_predicate_file("locked == 1\n", PROGRAM)


def test_comments_ignored():
    preds = parse_predicate_file(
        "find // the search procedure\nfound == 1 // done flag\n", PROGRAM
    )
    assert len(preds) == 1


def test_duplicate_predicates_deduplicated():
    preds = parse_predicate_file("find\nfound == 1, found == 1\n", PROGRAM)
    assert len(preds) == 1
