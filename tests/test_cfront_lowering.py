"""Tests for type checking, lowering to the intermediate form, and the CFG."""

import pytest

from repro.cfront import cast as C
from repro.cfront import parse_c_program, parse_program, typecheck_program
from repro.cfront.cfg import BRANCH, build_cfg
from repro.cfront.errors import TypeError_
from repro.cfront.exprutils import contains_call, multi_deref_depth, walk


def lower(source):
    return parse_c_program(source)


def flat_statements(stmts):
    for stmt in stmts:
        yield stmt
        for sub in stmt.substatements():
            yield from flat_statements(sub)


def all_exprs(func):
    for stmt in flat_statements(func.body):
        for attr in ("lhs", "rhs", "cond", "value"):
            expr = getattr(stmt, attr, None)
            if expr is not None:
                yield expr
        for arg in getattr(stmt, "args", []):
            yield arg


# -- type checking -----------------------------------------------------------


def test_undeclared_variable_rejected():
    with pytest.raises(TypeError_):
        typecheck_program(parse_program("void f(void) { x = 1; }"))


def test_deref_of_int_rejected():
    with pytest.raises(TypeError_):
        typecheck_program(parse_program("void f(int x) { int y; y = *x; }"))


def test_field_of_non_struct_rejected():
    with pytest.raises(TypeError_):
        typecheck_program(parse_program("void f(int x) { int y; y = x.val; }"))


def test_unknown_field_rejected():
    with pytest.raises(TypeError_):
        typecheck_program(
            parse_program("struct s { int a; }; void f(struct s *p) { int y; y = p->b; }")
        )


def test_wrong_arity_call_rejected():
    with pytest.raises(TypeError_):
        typecheck_program(
            parse_program("int g(int x) { return x; } void f(void) { int y; y = g(1, 2); }")
        )


def test_undeclared_function_registered_as_extern():
    prog = typecheck_program(parse_program("void f(void) { int y; y = mystery(1); }"))
    assert "mystery" in prog.functions
    assert not prog.functions["mystery"].is_defined


def test_goto_unknown_label_rejected():
    with pytest.raises(TypeError_):
        typecheck_program(parse_program("void f(void) { goto nowhere; }"))


def test_null_assignable_to_pointer():
    typecheck_program(parse_program("struct s { int a; }; void f(void) { struct s *p; p = NULL; }"))


def test_return_type_mismatch_rejected():
    with pytest.raises(TypeError_):
        typecheck_program(
            parse_program("struct s { int a; }; int f(struct s *p) { return p; }")
        )


def test_void_return_with_value_rejected():
    with pytest.raises(TypeError_):
        typecheck_program(parse_program("void f(void) { return 3; }"))


# -- lowering: calls hoisted to top level -----------------------------------


def test_call_in_expression_hoisted():
    prog = lower("int g(int x) { return x; } void f(void) { int z, x; z = x + g(x); }")
    func = prog.functions["f"]
    calls = [s for s in flat_statements(func.body) if isinstance(s, C.CallStmt)]
    assert len(calls) == 1
    assert calls[0].lhs is not None
    for expr in all_exprs(func):
        assert not contains_call(expr)


def test_nested_calls_hoisted_in_order():
    prog = lower(
        "int g(int x) { return x; } int h(int x) { return x; }"
        "void f(void) { int z; z = g(h(1)); }"
    )
    func = prog.functions["f"]
    calls = [s for s in flat_statements(func.body) if isinstance(s, C.CallStmt)]
    assert [c.name for c in calls] == ["h", "g"]


def test_call_in_condition_hoisted_before_if():
    prog = lower("int g(void) { return 1; } void f(void) { if (g()) { } }")
    func = prog.functions["f"]
    assert isinstance(func.body[0], C.CallStmt)
    branch = next(s for s in func.body if isinstance(s, C.If))
    assert not contains_call(branch.cond)


def test_call_in_while_condition_becomes_goto_loop():
    prog = lower("int g(void) { return 1; } void f(void) { while (g()) { } }")
    func = prog.functions["f"]
    # The structured while is gone; a goto loop remains.
    assert not any(isinstance(s, C.While) for s in flat_statements(func.body))
    assert any(isinstance(s, C.Goto) for s in flat_statements(func.body))


def test_short_circuit_call_not_hoisted_unconditionally():
    prog = lower(
        "int g(void) { return 1; } void f(int a) { int z; z = a && g(); }"
    )
    func = prog.functions["f"]
    # g() must be guarded by an If on a, not called unconditionally.
    top_level_calls = [s for s in func.body if isinstance(s, C.CallStmt)]
    assert top_level_calls == []
    guard = next(s for s in func.body if isinstance(s, C.If))
    assert any(isinstance(s, C.CallStmt) for s in flat_statements(guard.then_body))


def test_ternary_eliminated():
    prog = lower("void f(int a) { int z; z = a ? 1 : 2; }")
    func = prog.functions["f"]
    for expr in all_exprs(func):
        assert not any(isinstance(node, C.Cond) for node in walk(expr))
    assert any(isinstance(s, C.If) for s in func.body)


# -- lowering: nested dereferences -------------------------------------------


def test_double_deref_hoisted():
    prog = lower("void f(int **p) { int y; y = **p; }")
    func = prog.functions["f"]
    for expr in all_exprs(func):
        assert multi_deref_depth(expr) <= 1


def test_chained_arrow_hoisted():
    prog = lower(
        "struct cell { int val; struct cell *next; };"
        "void f(struct cell *p) { int y; y = p->next->val; }"
    )
    func = prog.functions["f"]
    for expr in all_exprs(func):
        assert multi_deref_depth(expr) <= 1
    assigns = [s for s in func.body if isinstance(s, C.Assign)]
    assert len(assigns) >= 2  # temp for p->next, then the read


def test_single_arrow_not_hoisted():
    prog = lower(
        "struct cell { int val; struct cell *next; };"
        "void f(struct cell *p) { int y; y = p->val; }"
    )
    func = prog.functions["f"]
    assigns = [s for s in func.body if isinstance(s, C.Assign)]
    assert len(assigns) == 1


def test_deep_lhs_hoisted():
    prog = lower(
        "struct cell { int val; struct cell *next; };"
        "void f(struct cell *p) { p->next->val = 1; }"
    )
    func = prog.functions["f"]
    for expr in all_exprs(func):
        assert multi_deref_depth(expr) <= 1


# -- lowering: loops and returns ----------------------------------------------


def test_for_loop_becomes_while():
    prog = lower("void f(void) { int i, s; s = 0; for (i = 0; i < 3; i++) { s = s + i; } }")
    func = prog.functions["f"]
    assert any(isinstance(s, C.While) for s in func.body)
    assert not any(isinstance(s, C.For) for s in flat_statements(func.body))


def test_continue_in_for_reaches_step():
    prog = lower(
        "int f(void) { int i, s; s = 0;"
        "for (i = 0; i < 4; i = i + 1) { if (i == 2) continue; s = s + i; }"
        "return s; }"
    )
    from repro.cfront.interp import Interpreter

    result, _ = Interpreter(prog).run("f")
    assert result == 0 + 1 + 3


def test_break_exits_loop():
    prog = lower(
        "int f(void) { int i; i = 0;"
        "while (1) { if (i == 3) break; i = i + 1; }"
        "return i; }"
    )
    from repro.cfront.interp import Interpreter

    result, _ = Interpreter(prog).run("f")
    assert result == 3


def test_do_while_executes_body_at_least_once():
    prog = lower("int f(void) { int i; i = 10; do { i = i + 1; } while (i < 5); return i; }")
    from repro.cfront.interp import Interpreter

    result, _ = Interpreter(prog).run("f")
    assert result == 11


def test_single_return_canonicalized():
    prog = lower("int f(int x) { if (x) { return 1; } return 2; }")
    func = prog.functions["f"]
    returns = [s for s in flat_statements(func.body) if isinstance(s, C.Return)]
    assert len(returns) == 1
    assert returns[0].value == C.Id(func.return_var)


def test_early_return_becomes_goto_exit():
    prog = lower("int f(int x) { if (x) { return 1; } return 2; }")
    func = prog.functions["f"]
    gotos = [s for s in flat_statements(func.body) if isinstance(s, C.Goto)]
    assert all(g.label == "__exit" for g in gotos)
    assert gotos  # at least the early return


def test_void_function_gets_bare_return():
    prog = lower("void f(void) { }")
    func = prog.functions["f"]
    assert isinstance(func.body[-1], C.Return)
    assert func.body[-1].value is None
    assert func.return_var is None


# -- CFG ----------------------------------------------------------------------


def test_cfg_straight_line():
    prog = lower("void f(void) { int x; x = 1; x = 2; }")
    cfg = build_cfg(prog.functions["f"])
    nodes = cfg.reachable_nodes()
    assert cfg.entry in nodes and cfg.exit in nodes
    assigns = [n for n in nodes if n.kind == "stmt" and isinstance(n.stmt, C.Assign)]
    assert len(assigns) == 2


def test_cfg_if_has_two_labeled_edges():
    prog = lower("void f(int x) { if (x) { x = 1; } else { x = 2; } }")
    cfg = build_cfg(prog.functions["f"])
    branch = next(n for n in cfg.nodes if n.kind == BRANCH)
    assumes = sorted(edge.assume for edge in branch.edges)
    assert assumes == [False, True]


def test_cfg_while_back_edge():
    prog = lower("void f(int x) { while (x) { x = x - 1; } }")
    cfg = build_cfg(prog.functions["f"])
    branch = next(n for n in cfg.nodes if n.kind == BRANCH)
    body_head = branch.successor(assume=True)
    # Follow the body until we come back to the branch.
    node, steps = body_head, 0
    while node is not branch and steps < 10:
        node = node.successor()
        steps += 1
    assert node is branch


def test_cfg_goto_resolves():
    prog = lower("void f(void) { goto out; out: ; }")
    cfg = build_cfg(prog.functions["f"])
    goto_node = next(
        n for n in cfg.nodes if n.kind == "stmt" and isinstance(n.stmt, C.Goto)
    )
    assert goto_node.successor() is cfg.labels["out"]


def test_cfg_statement_ids_unique():
    prog = lower("void f(int x) { if (x) { x = 1; } x = 2; }")
    cfg = build_cfg(prog.functions["f"])
    sids = [n.stmt.sid for n in cfg.nodes if n.stmt is not None]
    assert len(sids) == len(set(sids))
