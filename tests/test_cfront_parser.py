"""Unit tests for the parser (on unlowered ASTs)."""

import pytest

from repro.cfront import cast as C
from repro.cfront import parse_expression, parse_program
from repro.cfront.errors import ParseError


# -- expressions -----------------------------------------------------------


def test_precedence_mul_over_add():
    expr = parse_expression("a + b * c")
    assert isinstance(expr, C.BinOp) and expr.op == "+"
    assert isinstance(expr.right, C.BinOp) and expr.right.op == "*"


def test_left_associativity():
    expr = parse_expression("a - b - c")
    assert expr.op == "-"
    assert isinstance(expr.left, C.BinOp) and expr.left.op == "-"
    assert isinstance(expr.right, C.Id) and expr.right.name == "c"


def test_relational_vs_logical_precedence():
    expr = parse_expression("a < b && c > d")
    assert expr.op == "&&"
    assert expr.left.op == "<"
    assert expr.right.op == ">"


def test_parenthesized_grouping():
    expr = parse_expression("(a + b) * c")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_unary_operators():
    expr = parse_expression("-x")
    assert isinstance(expr, C.UnOp) and expr.op == "-"
    expr = parse_expression("!x")
    assert isinstance(expr, C.UnOp) and expr.op == "!"


def test_deref_and_addrof():
    expr = parse_expression("*p")
    assert isinstance(expr, C.Deref)
    expr = parse_expression("&x")
    assert isinstance(expr, C.AddrOf)


def test_double_deref():
    expr = parse_expression("**p")
    assert isinstance(expr, C.Deref)
    assert isinstance(expr.pointer, C.Deref)


def test_arrow_normalizes_to_deref_field():
    expr = parse_expression("p->val")
    assert isinstance(expr, C.FieldAccess)
    assert expr.field == "val"
    assert isinstance(expr.base, C.Deref)


def test_dot_field_access():
    expr = parse_expression("s.val")
    assert isinstance(expr, C.FieldAccess)
    assert isinstance(expr.base, C.Id)


def test_chained_arrows():
    expr = parse_expression("p->next->val")
    assert isinstance(expr, C.FieldAccess) and expr.field == "val"
    inner = expr.base
    assert isinstance(inner, C.Deref)
    assert isinstance(inner.pointer, C.FieldAccess) and inner.pointer.field == "next"


def test_array_indexing():
    expr = parse_expression("a[i + 1]")
    assert isinstance(expr, C.Index)
    assert expr.index.op == "+"


def test_call_expression():
    expr = parse_expression("f(x, y + 1)")
    assert isinstance(expr, C.Call)
    assert expr.name == "f"
    assert len(expr.args) == 2


def test_null_becomes_zero_literal():
    expr = parse_expression("NULL")
    assert expr == C.IntLit(0)


def test_ternary():
    expr = parse_expression("a ? b : c")
    assert isinstance(expr, C.Cond)


def test_star_in_expression_position_is_nondet():
    expr = parse_expression("*")
    assert isinstance(expr, C.Unknown)


def test_comparison_chain_parses_flat():
    expr = parse_expression("a == b != c")
    assert expr.op == "!="
    assert expr.left.op == "=="


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        parse_expression("a + b )")


def test_structural_equality_and_hash():
    e1 = parse_expression("p->val > v")
    e2 = parse_expression("p->val > v")
    assert e1 == e2
    assert hash(e1) == hash(e2)
    assert e1 != parse_expression("p->val < v")


# -- declarations ------------------------------------------------------------


def test_global_variables():
    prog = parse_program("int x; int y = 3;")
    assert prog.global_names() == ["x", "y"]
    assert prog.globals[1].init == C.IntLit(3)


def test_pointer_declarations():
    prog = parse_program("int *p; int **q;")
    assert prog.globals[0].type.is_pointer()
    assert prog.globals[1].type.target.is_pointer()


def test_multiple_declarators_share_base():
    prog = parse_program("int a, *b, c;")
    assert not prog.globals[0].type.is_pointer()
    assert prog.globals[1].type.is_pointer()
    assert not prog.globals[2].type.is_pointer()


def test_struct_definition():
    prog = parse_program("struct point { int x; int y; };")
    struct = prog.structs["point"]
    assert struct.is_complete
    assert [f.name for f in struct.fields] == ["x", "y"]


def test_self_referential_struct():
    prog = parse_program("struct cell { int val; struct cell *next; };")
    struct = prog.structs["cell"]
    assert struct.field("next").type.target is struct


def test_typedef_struct_pointer():
    prog = parse_program("typedef struct cell { int v; } *list; list head;")
    assert prog.globals[0].type.is_pointer()
    assert prog.globals[0].type.target.is_struct()


def test_enum_constants_fold():
    prog = parse_program("enum { A, B = 10, C }; int x = C;")
    assert prog.globals[0].init == C.IntLit(11)


def test_array_declaration():
    prog = parse_program("int a[10];")
    assert prog.globals[0].type.is_array()
    assert prog.globals[0].type.length == 10


def test_function_declaration_and_definition():
    prog = parse_program("int f(int x); int f(int x) { return x; }")
    func = prog.functions["f"]
    assert func.is_defined
    assert func.param_names() == ["x"]


def test_void_parameter_list():
    prog = parse_program("int f(void) { return 0; }")
    assert prog.functions["f"].params == []


def test_function_returning_pointer():
    prog = parse_program("struct cell { int v; }; struct cell *f(void) { return NULL; }")
    assert prog.functions["f"].ret_type.is_pointer()


# -- statements --------------------------------------------------------------


def _body(source):
    prog = parse_program("void f(void) { %s }" % source)
    return prog.functions["f"].body


def test_assignment_statement():
    (stmt,) = _body("x = 1;")
    assert isinstance(stmt, C.Assign)


def test_call_statement_with_result():
    (stmt,) = _body("x = g(1);")
    assert isinstance(stmt, C.CallStmt)
    assert stmt.name == "g"


def test_call_statement_discarding_result():
    (stmt,) = _body("g(1);")
    assert isinstance(stmt, C.CallStmt)
    assert stmt.lhs is None


def test_chained_assignment_desugars():
    stmts = _body("x = y = 0;")
    assert len(stmts) == 2
    assert isinstance(stmts[0], C.Assign) and stmts[0].lhs == C.Id("y")
    assert isinstance(stmts[1], C.Assign) and stmts[1].lhs == C.Id("x")
    assert stmts[1].rhs == C.Id("y")


def test_compound_assignment_desugars():
    (stmt,) = _body("x += 2;")
    assert isinstance(stmt, C.Assign)
    assert stmt.rhs == C.BinOp("+", C.Id("x"), C.IntLit(2))


def test_postincrement_desugars():
    (stmt,) = _body("x++;")
    assert stmt.rhs == C.BinOp("+", C.Id("x"), C.IntLit(1))


def test_predecrement_desugars():
    (stmt,) = _body("--x;")
    assert stmt.rhs == C.BinOp("-", C.Id("x"), C.IntLit(1))


def test_increment_through_pointer():
    (stmt,) = _body("(*p)++;")
    assert isinstance(stmt.lhs, C.Deref)


def test_if_else():
    (stmt,) = _body("if (x) { y = 1; } else { y = 2; }")
    assert isinstance(stmt, C.If)
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_if_without_braces():
    (stmt,) = _body("if (x) y = 1;")
    assert isinstance(stmt, C.If)
    assert len(stmt.then_body) == 1


def test_dangling_else_binds_to_inner_if():
    (stmt,) = _body("if (a) if (b) x = 1; else x = 2;")
    assert stmt.else_body == []
    inner = stmt.then_body[0]
    assert len(inner.else_body) == 1


def test_while_loop():
    (stmt,) = _body("while (x > 0) { x = x - 1; }")
    assert isinstance(stmt, C.While)


def test_for_loop_parses():
    (stmt,) = _body("for (i = 0; i < 10; i++) { s = s + i; }")
    assert isinstance(stmt, C.For)
    assert len(stmt.init) == 1 and len(stmt.step) == 1


def test_do_while_parses():
    (stmt,) = _body("do { x = x - 1; } while (x);")
    assert isinstance(stmt, C.DoWhile)


def test_goto_and_label():
    stmts = _body("goto done; x = 1; done: x = 2;")
    assert isinstance(stmts[0], C.Goto)
    assert stmts[2].labels == ["done"]


def test_label_at_end_of_block():
    stmts = _body("goto out; out: ;")
    assert stmts[-1].labels == ["out"]


def test_local_declaration_with_initializer():
    prog = parse_program("void f(void) { int x = 5; }")
    func = prog.functions["f"]
    assert func.local_names() == ["x"]
    assert isinstance(func.body[0], C.Assign)


def test_assert_and_assume_statements():
    stmts = _body("assert(x > 0); assume(y < 0);")
    assert isinstance(stmts[0], C.Assert)
    assert isinstance(stmts[1], C.Assume)


def test_return_forms():
    prog = parse_program("int f(void) { return 3; } void g(void) { return; }")
    assert prog.functions["f"].body[0].value == C.IntLit(3)
    assert prog.functions["g"].body[0].value is None


def test_break_and_continue_parse():
    (stmt,) = _body("while (1) { if (x) break; continue; }")
    assert isinstance(stmt.body[0], C.If)
    assert isinstance(stmt.body[0].then_body[0], C.Break)
    assert isinstance(stmt.body[1], C.Continue)


def test_switch_rejected_with_hint():
    with pytest.raises(ParseError, match="switch"):
        parse_program("void f(int x) { switch (x) { } }")


def test_sizeof_type_constant_folds():
    (stmt,) = _body("x = sizeof(int);")
    assert stmt.rhs == C.IntLit(4)


def test_cast_expression():
    prog = parse_program(
        "struct cell { int v; }; void f(void) { struct cell *p; p = (struct cell*)q; }"
    )
    stmt = prog.functions["f"].body[0]
    assert isinstance(stmt.rhs, C.Cast)
