"""Tests for the ROBDD manager, including property-based checks against
brute-force truth tables."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager


def brute_eval(formula, assignment):
    """Evaluate a formula tree ('var', i) / ('not', f) / ('and'|'or', f, g)."""
    kind = formula[0]
    if kind == "var":
        return assignment[formula[1]]
    if kind == "const":
        return formula[1]
    if kind == "not":
        return not brute_eval(formula[1], assignment)
    if kind == "and":
        return brute_eval(formula[1], assignment) and brute_eval(formula[2], assignment)
    if kind == "or":
        return brute_eval(formula[1], assignment) or brute_eval(formula[2], assignment)
    if kind == "xor":
        return brute_eval(formula[1], assignment) != brute_eval(formula[2], assignment)
    raise AssertionError(kind)


def build_bdd(manager, formula):
    kind = formula[0]
    if kind == "var":
        return manager.var(formula[1])
    if kind == "const":
        return manager.constant(formula[1])
    if kind == "not":
        return manager.lnot(build_bdd(manager, formula[1]))
    if kind == "and":
        return manager.land(build_bdd(manager, formula[1]), build_bdd(manager, formula[2]))
    if kind == "or":
        return manager.lor(build_bdd(manager, formula[1]), build_bdd(manager, formula[2]))
    if kind == "xor":
        return manager.xor(build_bdd(manager, formula[1]), build_bdd(manager, formula[2]))
    raise AssertionError(kind)


NUM_VARS = 4


def formulas(depth=3):
    base = st.one_of(
        st.tuples(st.just("var"), st.integers(0, NUM_VARS - 1)),
        st.tuples(st.just("const"), st.booleans()),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
        ),
        max_leaves=12,
    )


def all_assignments():
    for values in itertools.product([False, True], repeat=NUM_VARS):
        yield dict(enumerate(values))


# -- basics -------------------------------------------------------------------


def test_constants_distinct():
    m = BddManager()
    assert m.true is not m.false
    assert m.is_true(m.true)
    assert m.is_false(m.false)


def test_var_and_negation():
    m = BddManager()
    x = m.var(0)
    assert m.evaluate(x, {0: True})
    assert not m.evaluate(x, {0: False})
    assert m.evaluate(m.lnot(x), {0: False})


def test_hash_consing_identity():
    m = BddManager()
    a = m.land(m.var(0), m.var(1))
    b = m.land(m.var(0), m.var(1))
    assert a is b
    c = m.lnot(m.lnot(a))
    assert c is a


def test_tautology_collapses_to_true():
    m = BddManager()
    x = m.var(0)
    assert m.lor(x, m.lnot(x)) is m.true
    assert m.land(x, m.lnot(x)) is m.false


@settings(max_examples=200, deadline=None)
@given(formulas())
def test_bdd_matches_bruteforce(formula):
    m = BddManager()
    bdd = build_bdd(m, formula)
    for assignment in all_assignments():
        assert m.evaluate(bdd, assignment) == brute_eval(formula, assignment)


@settings(max_examples=100, deadline=None)
@given(formulas(), st.integers(0, NUM_VARS - 1))
def test_exists_matches_bruteforce(formula, var):
    m = BddManager()
    bdd = m.exists(build_bdd(m, formula), [var])
    for assignment in all_assignments():
        expected = brute_eval(formula, {**assignment, var: False}) or brute_eval(
            formula, {**assignment, var: True}
        )
        assert m.evaluate(bdd, {**assignment, var: False}) == expected


@settings(max_examples=100, deadline=None)
@given(formulas(), st.integers(0, NUM_VARS - 1), st.booleans())
def test_restrict_matches_bruteforce(formula, var, value):
    m = BddManager()
    bdd = m.restrict(build_bdd(m, formula), var, value)
    for assignment in all_assignments():
        expected = brute_eval(formula, {**assignment, var: value})
        assert m.evaluate(bdd, assignment) == expected


def test_rename_upward_and_downward():
    m = BddManager()
    f = m.land(m.var(0), m.lnot(m.var(2)))
    g = m.rename(f, {0: 5})
    assert m.evaluate(g, {5: True, 2: False, 0: False})
    assert not m.evaluate(g, {5: False, 2: False, 0: True})
    h = m.rename(g, {5: 0})
    assert h is f


def test_rename_swapped_order_safe():
    m = BddManager()
    # Rename a high variable to a low one (order-crossing).
    f = m.land(m.var(3), m.var(4))
    g = m.rename(f, {4: 1})
    assert m.evaluate(g, {3: True, 1: True})
    assert not m.evaluate(g, {3: True, 1: False})


def test_support():
    m = BddManager()
    f = m.lor(m.land(m.var(1), m.var(3)), m.var(5))
    assert m.support(f) == {1, 3, 5}
    assert m.support(m.true) == set()


def test_pick_assignment_satisfies():
    m = BddManager()
    f = m.land(m.var(0), m.lnot(m.var(1)))
    assignment = m.pick_assignment(f)
    assert m.evaluate(f, {**{0: False, 1: False}, **assignment})
    assert m.pick_assignment(m.false) is None


def test_cubes_cover_exactly():
    m = BddManager()
    f = m.lor(m.land(m.var(0), m.var(1)), m.lnot(m.var(0)))
    cubes = list(m.cubes(f))
    for assignment in itertools.product([False, True], repeat=2):
        env = dict(enumerate(assignment))
        expected = m.evaluate(f, env)
        covered = any(all(env[v] == val for v, val in cube.items()) for cube in cubes)
        assert covered == expected


def test_count_assignments():
    m = BddManager()
    f = m.lor(m.var(0), m.var(1))
    assert m.count_assignments(f, [0, 1]) == 3
    assert m.count_assignments(f, [0, 1, 2]) == 6
    assert m.count_assignments(m.true, [0, 1]) == 4
    assert m.count_assignments(m.false, [0, 1]) == 0


def test_assignments_enumeration():
    m = BddManager()
    f = m.iff(m.var(0), m.var(1))
    models = {tuple(sorted(a.items())) for a in m.assignments(f, [0, 1])}
    assert models == {
        ((0, False), (1, False)),
        ((0, True), (1, True)),
    }


def test_implies_and_iff():
    m = BddManager()
    x, y = m.var(0), m.var(1)
    assert m.implies(m.false, x) is m.true
    assert m.iff(x, x) is m.true
    assert m.evaluate(m.implies(x, y), {0: True, 1: False}) is False


def test_forall():
    m = BddManager()
    x, y = m.var(0), m.var(1)
    f = m.lor(x, y)
    assert m.forall(f, [0]) is y
    assert m.forall(m.true, [0, 1]) is m.true
