"""Tests for the ROBDD manager, including property-based checks against
brute-force truth tables."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BddManager


def brute_eval(formula, assignment):
    """Evaluate a formula tree ('var', i) / ('not', f) / ('and'|'or', f, g)."""
    kind = formula[0]
    if kind == "var":
        return assignment[formula[1]]
    if kind == "const":
        return formula[1]
    if kind == "not":
        return not brute_eval(formula[1], assignment)
    if kind == "and":
        return brute_eval(formula[1], assignment) and brute_eval(formula[2], assignment)
    if kind == "or":
        return brute_eval(formula[1], assignment) or brute_eval(formula[2], assignment)
    if kind == "xor":
        return brute_eval(formula[1], assignment) != brute_eval(formula[2], assignment)
    raise AssertionError(kind)


def build_bdd(manager, formula):
    kind = formula[0]
    if kind == "var":
        return manager.var(formula[1])
    if kind == "const":
        return manager.constant(formula[1])
    if kind == "not":
        return manager.lnot(build_bdd(manager, formula[1]))
    if kind == "and":
        return manager.land(build_bdd(manager, formula[1]), build_bdd(manager, formula[2]))
    if kind == "or":
        return manager.lor(build_bdd(manager, formula[1]), build_bdd(manager, formula[2]))
    if kind == "xor":
        return manager.xor(build_bdd(manager, formula[1]), build_bdd(manager, formula[2]))
    raise AssertionError(kind)


NUM_VARS = 4


def formulas(depth=3):
    base = st.one_of(
        st.tuples(st.just("var"), st.integers(0, NUM_VARS - 1)),
        st.tuples(st.just("const"), st.booleans()),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
        ),
        max_leaves=12,
    )


def all_assignments():
    for values in itertools.product([False, True], repeat=NUM_VARS):
        yield dict(enumerate(values))


# -- basics -------------------------------------------------------------------


def test_constants_distinct():
    m = BddManager()
    assert m.true is not m.false
    assert m.is_true(m.true)
    assert m.is_false(m.false)


def test_var_and_negation():
    m = BddManager()
    x = m.var(0)
    assert m.evaluate(x, {0: True})
    assert not m.evaluate(x, {0: False})
    assert m.evaluate(m.lnot(x), {0: False})


def test_hash_consing_identity():
    m = BddManager()
    a = m.land(m.var(0), m.var(1))
    b = m.land(m.var(0), m.var(1))
    assert a is b
    c = m.lnot(m.lnot(a))
    assert c is a


def test_tautology_collapses_to_true():
    m = BddManager()
    x = m.var(0)
    assert m.lor(x, m.lnot(x)) is m.true
    assert m.land(x, m.lnot(x)) is m.false


@settings(max_examples=200, deadline=None)
@given(formulas())
def test_bdd_matches_bruteforce(formula):
    m = BddManager()
    bdd = build_bdd(m, formula)
    for assignment in all_assignments():
        assert m.evaluate(bdd, assignment) == brute_eval(formula, assignment)


@settings(max_examples=100, deadline=None)
@given(formulas(), st.integers(0, NUM_VARS - 1))
def test_exists_matches_bruteforce(formula, var):
    m = BddManager()
    bdd = m.exists(build_bdd(m, formula), [var])
    for assignment in all_assignments():
        expected = brute_eval(formula, {**assignment, var: False}) or brute_eval(
            formula, {**assignment, var: True}
        )
        assert m.evaluate(bdd, {**assignment, var: False}) == expected


@settings(max_examples=100, deadline=None)
@given(formulas(), st.integers(0, NUM_VARS - 1), st.booleans())
def test_restrict_matches_bruteforce(formula, var, value):
    m = BddManager()
    bdd = m.restrict(build_bdd(m, formula), var, value)
    for assignment in all_assignments():
        expected = brute_eval(formula, {**assignment, var: value})
        assert m.evaluate(bdd, assignment) == expected


def test_rename_upward_and_downward():
    m = BddManager()
    f = m.land(m.var(0), m.lnot(m.var(2)))
    g = m.rename(f, {0: 5})
    assert m.evaluate(g, {5: True, 2: False, 0: False})
    assert not m.evaluate(g, {5: False, 2: False, 0: True})
    h = m.rename(g, {5: 0})
    assert h is f


def test_rename_swapped_order_safe():
    m = BddManager()
    # Rename a high variable to a low one (order-crossing).
    f = m.land(m.var(3), m.var(4))
    g = m.rename(f, {4: 1})
    assert m.evaluate(g, {3: True, 1: True})
    assert not m.evaluate(g, {3: True, 1: False})


def test_support():
    m = BddManager()
    f = m.lor(m.land(m.var(1), m.var(3)), m.var(5))
    assert m.support(f) == {1, 3, 5}
    assert m.support(m.true) == set()


def test_pick_assignment_satisfies():
    m = BddManager()
    f = m.land(m.var(0), m.lnot(m.var(1)))
    assignment = m.pick_assignment(f)
    assert m.evaluate(f, {**{0: False, 1: False}, **assignment})
    assert m.pick_assignment(m.false) is None


def test_cubes_cover_exactly():
    m = BddManager()
    f = m.lor(m.land(m.var(0), m.var(1)), m.lnot(m.var(0)))
    cubes = list(m.cubes(f))
    for assignment in itertools.product([False, True], repeat=2):
        env = dict(enumerate(assignment))
        expected = m.evaluate(f, env)
        covered = any(all(env[v] == val for v, val in cube.items()) for cube in cubes)
        assert covered == expected


def test_count_assignments():
    m = BddManager()
    f = m.lor(m.var(0), m.var(1))
    assert m.count_assignments(f, [0, 1]) == 3
    assert m.count_assignments(f, [0, 1, 2]) == 6
    assert m.count_assignments(m.true, [0, 1]) == 4
    assert m.count_assignments(m.false, [0, 1]) == 0


def test_assignments_enumeration():
    m = BddManager()
    f = m.iff(m.var(0), m.var(1))
    models = {tuple(sorted(a.items())) for a in m.assignments(f, [0, 1])}
    assert models == {
        ((0, False), (1, False)),
        ((0, True), (1, True)),
    }


def test_implies_and_iff():
    m = BddManager()
    x, y = m.var(0), m.var(1)
    assert m.implies(m.false, x) is m.true
    assert m.iff(x, x) is m.true
    assert m.evaluate(m.implies(x, y), {0: True, 1: False}) is False


def test_forall():
    m = BddManager()
    x, y = m.var(0), m.var(1)
    f = m.lor(x, y)
    assert m.forall(f, [0]) is y
    assert m.forall(m.true, [0, 1]) is m.true


# -- fused kernels and fast-path machinery ------------------------------------


@given(formulas(), formulas())
@settings(max_examples=60, deadline=None)
def test_and_exists_matches_land_then_exists(f_formula, g_formula):
    m = BddManager()
    f = build_bdd(m, f_formula)
    g = build_bdd(m, g_formula)
    for variables in ([], [0], [1, 3], [0, 1, 2, 3]):
        assert m.and_exists(f, g, variables) is m.exists(m.land(f, g), variables)


@given(formulas(), formulas())
@settings(max_examples=60, deadline=None)
def test_and_not_matches_land_lnot(f_formula, g_formula):
    m = BddManager()
    f = build_bdd(m, f_formula)
    g = build_bdd(m, g_formula)
    assert m.and_not(f, g) is m.land(f, m.lnot(g))


@given(formulas())
@settings(max_examples=60, deadline=None)
def test_exists_set_matches_exists(formula):
    m = BddManager()
    f = build_bdd(m, formula)
    for variables in ([], [2], [0, 3], list(range(NUM_VARS))):
        assert m.exists_set(f, variables) is m.exists(f, variables)


@given(formulas())
@settings(max_examples=60, deadline=None)
def test_complement_matches_lnot(formula):
    m = BddManager()
    f = build_bdd(m, formula)
    assert m.complement(f) is m.lnot(f)


def test_equiv_vars_matches_iff():
    m = BddManager()
    assert m.equiv_vars(0, 3) is m.iff(m.var(0), m.var(3))
    assert m.equiv_vars(3, 0) is m.iff(m.var(0), m.var(3))
    assert m.equiv_vars(2, 2) is m.true


def test_cube_builds_conjunction():
    m = BddManager()
    literals = [(0, True), (2, False), (5, True)]
    expected = m.land(m.land(m.var(0), m.lnot(m.var(2))), m.var(5))
    assert m.cube(literals) is expected
    assert m.cube([]) is m.true
    assert m.cube([(1, True), (1, False)]) is m.false
    assert m.cube([(1, True), (1, True)]) is m.var(1)


def test_rename_simultaneous_swap():
    # {a->b, b->a} must swap, not clobber (the legacy pair-by-pair
    # implementation collapsed this to an identity or worse).
    m = BddManager()
    f = m.land(m.var(0), m.lnot(m.var(2)))
    swapped = m.rename(f, {0: 2, 2: 0})
    assert swapped is m.land(m.var(2), m.lnot(m.var(0)))
    # A three-cycle.
    g = m.land(m.land(m.var(0), m.lnot(m.var(2))), m.var(4))
    rotated = m.rename(g, {0: 2, 2: 4, 4: 0})
    assert rotated is m.land(m.land(m.var(2), m.lnot(m.var(4))), m.var(0))


def test_rename_rejects_non_injective():
    import pytest

    m = BddManager()
    f = m.land(m.var(0), m.var(1))
    with pytest.raises(ValueError):
        m.rename(f, {0: 2, 1: 2})


def test_rename_shift_vs_compose_agree():
    m = BddManager()
    f = m.lor(m.land(m.var(0), m.var(2)), m.lnot(m.var(4)))
    shifted = m.rename(f, {0: 1, 2: 3, 4: 5})  # order-preserving: shift
    composed = m.rename(f, {0: 5, 4: 1})  # order-breaking: compose
    assert shifted is m.lor(m.land(m.var(1), m.var(3)), m.lnot(m.var(5)))
    assert composed is m.lor(m.land(m.var(5), m.var(2)), m.lnot(m.var(1)))
    assert m.stats_snapshot()["renames_shifted"] >= 1
    assert m.stats_snapshot()["renames_composed"] >= 1


def test_op_cache_eviction_bounded():
    m = BddManager(max_cache_entries=8)
    for i in range(16):
        m.lor(m.var(2 * i), m.var(2 * i + 1))
    snapshot = m.stats_snapshot()
    assert snapshot["cache_evictions"] >= 1
    assert len(m._ite_cache) <= 8
    # Results stay correct after eviction.
    assert m.lor(m.var(0), m.var(0)) is m.var(0)


def test_collect_garbage_keeps_roots():
    m = BddManager()
    keep = m.land(m.var(0), m.var(1))
    for i in range(10, 30):
        m.land(m.var(i), m.lnot(m.var(i + 1)))  # garbage
    before = m.live_nodes
    collected = m.collect_garbage([keep])
    assert collected > 0
    assert m.live_nodes < before
    # The kept BDD still works and new building resumes cleanly.
    assert m.evaluate(keep, {0: True, 1: True}) is True
    assert m.land(keep, m.var(2)) is not m.false
    assert m.stats_snapshot()["gc_runs"] == 1
