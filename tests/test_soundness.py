"""The executable soundness theorem (Section 4.6): every feasible C trace
must replay cleanly inside BP(P, E) with matching predicate valuations.

Deterministic cases cover the paper's examples and each abstraction
feature; a hypothesis-driven generator then checks random scalar programs
against random predicate sets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import parse_c_program
from repro.cfront.interp import Cell
from repro.core import C2bp, C2bpOptions, parse_predicate_file
from repro.core.replay import TraceReplayer


def replay(source, predicate_text, entry="main", args=(), oracle=None, args_factory=None):
    program = parse_c_program(source)
    predicates = parse_predicate_file(predicate_text, program)
    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    replayer = TraceReplayer(
        tool,
        boolean_program,
        entry=entry,
        args=list(args),
        extern_oracle=oracle,
        args_factory=args_factory,
    )
    return replayer.run()


def assert_sound(report):
    assert report.blocked is None, "assume blocked: %r" % (report.blocked,)
    assert not report.violations, report.violations


# -- deterministic scalar cases ---------------------------------------------------


def test_straight_line_assignments():
    report = replay(
        "void main(void) { int x, y; x = 1; y = x + 1; x = y * 2; }",
        "main\nx == 1, y == 2, x > y\n",
    )
    assert_sound(report)


def test_branching_both_paths():
    source = """
    void main(int input) {
        int x;
        if (input > 0) { x = 1; } else { x = 0; }
        if (x == 1) { x = 2; }
    }
    """
    preds = "main\nx == 1, x == 2, input > 0\n"
    for value in (-3, 0, 5):
        assert_sound(replay(source, preds, args=[value]))


def test_loop_iterations():
    source = """
    void main(void) {
        int i, s;
        i = 0;
        s = 0;
        while (i < 3) {
            s = s + i;
            i = i + 1;
        }
    }
    """
    assert_sound(replay(source, "main\ni < 3, s == 0, i == 0\n"))


def test_goto_paths():
    source = """
    void main(int c) {
        int x;
        x = 0;
        if (c > 0) { goto skipit; }
        x = 1;
        skipit: x = x + 1;
    }
    """
    preds = "main\nx == 1, x == 2, c > 0\n"
    assert_sound(replay(source, preds, args=[1]))
    assert_sound(replay(source, preds, args=[0]))


def test_nondet_input():
    source = "void main(void) { int x; x = *; if (x > 0) { x = x - 1; } }"
    # The oracle decides the '*' value; both signs must replay.
    assert_sound(replay(source, "main\nx > 0, x == 0\n", oracle=lambda n, a: 5))
    assert_sound(replay(source, "main\nx > 0, x == 0\n", oracle=lambda n, a: -5))


def test_procedure_call_with_return_predicate():
    source = """
    int inc(int a) {
        int r;
        r = a + 1;
        return r;
    }
    void main(void) {
        int x, y;
        x = 0;
        y = inc(x);
    }
    """
    preds = """
    inc
    a == 0, r == 1

    main
    x == 0, y == 1
    """
    assert_sound(replay(source, preds))


def test_procedure_call_globals():
    source = """
    int locked;
    void acquire(void) { locked = 1; }
    void release(void) { locked = 0; }
    void main(void) {
        acquire();
        release();
        acquire();
    }
    """
    preds = "global\nlocked == 1\n"
    assert_sound(replay(source, preds))


def test_extern_call_havoc():
    source = """
    void main(void) {
        int x;
        x = 1;
        x = mystery(x);
        if (x == 1) { x = 2; }
    }
    """
    assert_sound(replay(source, "main\nx == 1, x == 2\n", oracle=lambda n, a: 7))
    assert_sound(replay(source, "main\nx == 1, x == 2\n", oracle=lambda n, a: 1))


def test_enforce_does_not_block_real_traces():
    source = "void main(void) { int x; x = 1; x = 2; x = 3; }"
    report = replay(source, "main\nx == 1, x == 2, x == 3\n")
    assert_sound(report)


def test_assert_does_not_derail_replay():
    source = "void main(void) { int x; x = 1; assert(x == 1); x = 2; }"
    report = replay(source, "main\nx == 1\n")
    assert_sound(report)


# -- the partition example with a real heap ---------------------------------------


PARTITION_SRC = r"""
typedef struct cell {
    int val;
    struct cell* next;
} *list;

list partition(list *l, int v) {
    list curr, prev, newl, nextcurr;
    curr = *l;
    prev = NULL;
    newl = NULL;
    while (curr != NULL) {
        nextcurr = curr->next;
        if (curr->val > v) {
            if (prev != NULL) {
                prev->next = nextcurr;
            }
            if (curr == *l) {
                *l = nextcurr;
            }
            curr->next = newl;
L:          newl = curr;
        } else {
            prev = curr;
        }
        curr = nextcurr;
    }
    return newl;
}
"""


@pytest.mark.parametrize(
    "values", [[], [1], [9], [5, 1, 7, 3], [4, 4, 4], [9, 8, 7, 1, 2]]
)
def test_partition_traces_replay(values):
    def build_args(interp):
        head = interp.make_list(values)
        return [Cell(head, "l"), 4]

    report = replay(
        PARTITION_SRC,
        "partition\ncurr == NULL, prev == NULL, curr->val > v, prev->val > v\n",
        entry="partition",
        args_factory=build_args,
    )
    assert_sound(report)


# -- property-based: random scalar programs -----------------------------------------


_VARS = ["a", "b", "c"]


@st.composite
def small_programs(draw):
    """Random terminating scalar programs over a, b, c."""

    def expr(depth=0):
        choice = draw(st.integers(0, 3 if depth < 2 else 1))
        if choice == 0:
            return str(draw(st.integers(-3, 3)))
        if choice == 1:
            return draw(st.sampled_from(_VARS))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return "(%s %s %s)" % (expr(depth + 1), op, expr(depth + 1))

    def cond():
        op = draw(st.sampled_from(["<", "<=", "==", "!=", ">", ">="]))
        return "%s %s %s" % (draw(st.sampled_from(_VARS)), op, expr(1))

    def stmt(depth):
        choice = draw(st.integers(0, 2 if depth < 2 else 0))
        if choice == 0:
            return "%s = %s;" % (draw(st.sampled_from(_VARS)), expr())
        if choice == 1:
            return "if (%s) { %s } else { %s }" % (
                cond(),
                block(depth + 1),
                block(depth + 1),
            )
        # A loop bounded by a fresh counter to guarantee termination.
        body = block(depth + 1)
        return (
            "k = 0; while (k < 2) { k = k + 1; %s }" % body
        )

    def block(depth):
        count = draw(st.integers(1, 3))
        return " ".join(stmt(depth) for _ in range(count))

    body = block(0)
    source = "void main(void) { int a, b, c, k; a = 0; b = 0; c = 0; %s }" % body

    num_preds = draw(st.integers(1, 3))
    preds = []
    for _ in range(num_preds):
        op = draw(st.sampled_from(["<", "<=", "==", ">", ">="]))
        left = draw(st.sampled_from(_VARS))
        right = draw(
            st.one_of(st.integers(-3, 3).map(str), st.sampled_from(_VARS))
        )
        preds.append("%s %s %s" % (left, op, right))
    predicate_text = "main\n" + ", ".join(preds) + "\n"
    return source, predicate_text


@settings(max_examples=40, deadline=None)
@given(small_programs())
def test_random_scalar_programs_replay_soundly(case):
    source, predicate_text = case
    report = replay(source, predicate_text)
    assert_sound(report)


@settings(max_examples=15, deadline=None)
@given(small_programs())
def test_random_programs_sound_without_optimizations(case):
    # The ablation configurations must stay sound too.
    source, predicate_text = case
    program = parse_c_program(source)
    predicates = parse_predicate_file(predicate_text, program)
    options = C2bpOptions(
        cone_of_influence=False,
        skip_unchanged=False,
        syntactic_heuristics=False,
        max_cube_length=2,
        distribute_f=True,
    )
    tool = C2bp(program, predicates, options=options)
    boolean_program = tool.run()
    report = TraceReplayer(tool, boolean_program).run()
    assert_sound(report)


# -- property-based: random programs WITH procedure calls ---------------------------


@st.composite
def programs_with_calls(draw):
    """Random terminating two-procedure programs: main calls a helper."""

    def expr(vars_, depth=0):
        choice = draw(st.integers(0, 3 if depth < 2 else 1))
        if choice == 0:
            return str(draw(st.integers(-3, 3)))
        if choice == 1:
            return draw(st.sampled_from(vars_))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return "(%s %s %s)" % (expr(vars_, depth + 1), op, expr(vars_, depth + 1))

    def cond(vars_):
        op = draw(st.sampled_from(["<", "<=", "==", "!=", ">", ">="]))
        return "%s %s %s" % (draw(st.sampled_from(vars_)), op, expr(vars_, 1))

    helper_vars = ["p", "h"]
    helper_body = []
    helper_body.append("h = %s;" % expr(helper_vars))
    if draw(st.booleans()):
        helper_body.append(
            "if (%s) { h = %s; } else { h = %s; }"
            % (cond(helper_vars), expr(helper_vars), expr(helper_vars))
        )
    helper_body.append("return h;")
    helper = "int helper(int p) { int h; %s }" % " ".join(helper_body)

    main_vars = ["a", "b"]
    main_stmts = ["a = 0;", "b = 0;"]
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            main_stmts.append(
                "%s = %s;" % (draw(st.sampled_from(main_vars)), expr(main_vars))
            )
        elif kind == 1:
            main_stmts.append(
                "%s = helper(%s);"
                % (draw(st.sampled_from(main_vars)), expr(main_vars))
            )
        else:
            main_stmts.append(
                "if (%s) { %s = helper(%s); }"
                % (cond(main_vars), draw(st.sampled_from(main_vars)), expr(main_vars))
            )
    source = "%s void main(void) { int a, b; %s }" % (helper, " ".join(main_stmts))

    helper_preds, main_preds = [], []
    for target, vars_ in ((helper_preds, ["p", "h"]), (main_preds, ["a", "b"])):
        for _ in range(draw(st.integers(1, 2))):
            op = draw(st.sampled_from(["<", "<=", "==", ">", ">="]))
            target.append(
                "%s %s %s"
                % (
                    draw(st.sampled_from(vars_)),
                    op,
                    draw(st.one_of(st.integers(-3, 3).map(str), st.sampled_from(vars_))),
                )
            )
    predicate_text = "helper\n%s\n\nmain\n%s\n" % (
        ", ".join(helper_preds),
        ", ".join(main_preds),
    )
    return source, predicate_text


@settings(max_examples=30, deadline=None)
@given(programs_with_calls())
def test_random_interprocedural_programs_replay_soundly(case):
    source, predicate_text = case
    report = replay(source, predicate_text)
    assert_sound(report)
