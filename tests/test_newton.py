"""Tests for Newton: path simulation, feasibility, predicate discovery."""

from repro.cfront import cast as C
from repro.cfront import parse_c_program
from repro.core import PredicateSet
from repro.newton import CPathStep, PathSimulator, analyze_path
from repro.prover import Prover


def program_and_path(source, script):
    """Build CPathSteps from a script of (func, sid-index or locator)."""
    program = parse_c_program(source)
    return program


def steps_for(program, func_name, picks):
    """Construct a path through func by statement positions with branch
    outcomes: picks is a list of ('s', index) or ('b', index, outcome)
    referring to the flattened statement list."""
    func = program.functions[func_name]
    flat = []

    def visit(stmts):
        for stmt in stmts:
            flat.append(stmt)
            for sub in stmt.substatements():
                visit(sub)

    visit(func.body)
    steps = []
    for pick in picks:
        if pick[0] == "s":
            steps.append(CPathStep(func_name, flat[pick[1]], "stmt"))
        else:
            steps.append(CPathStep(func_name, flat[pick[1]], "branch", pick[2]))
    return steps


def test_simulator_straight_line_constraints():
    program = parse_c_program(
        "void main(void) { int x; x = 1; if (x == 2) { x = 3; } }"
    )
    # Path: x = 1; branch x == 2 taken TRUE (infeasible).
    steps = steps_for(program, "main", [("s", 0), ("b", 1, True)])
    sim = PathSimulator(program)
    constraints = sim.simulate(steps)
    assert len(constraints) == 1
    # The constraint 1 == 2 constant-folds to 0 (false) after substitution.
    assert constraints[0].formula == C.IntLit(0)


def test_simulator_negated_branch():
    program = parse_c_program("void main(int x) { if (x > 0) { x = 1; } }")
    steps = steps_for(program, "main", [("b", 0, False)])
    sim = PathSimulator(program)
    (constraint,) = sim.simulate(steps)
    assert constraint.polarity is False
    assert constraint.source_expr == C.negate(
        program.functions["main"].body[0].cond
    )


def test_feasible_path_reported_feasible():
    program = parse_c_program("void main(int x) { if (x > 0) { x = 1; } }")
    steps = steps_for(program, "main", [("b", 0, True)])
    result = analyze_path(program, steps)
    assert result.feasible


def test_infeasible_path_detected():
    program = parse_c_program(
        "void main(void) { int x; x = 1; if (x == 2) { x = 3; } }"
    )
    steps = steps_for(program, "main", [("s", 0), ("b", 1, True)])
    result = analyze_path(program, steps)
    assert not result.feasible


def test_contradictory_branches_detected():
    program = parse_c_program(
        "void main(int x) { if (x > 0) { } if (x < 0) { } }"
    )
    steps = steps_for(program, "main", [("b", 0, True), ("b", 1, True)])
    result = analyze_path(program, steps)
    assert not result.feasible
    # Discovery proposes the branch conditions as predicates.
    names = {p.name for p in result.new_predicates}
    assert "x>0" in names or "x<0" in names


def test_existing_predicates_not_rediscovered():
    program = parse_c_program(
        "void main(int x) { if (x > 0) { } if (x < 0) { } }"
    )
    steps = steps_for(program, "main", [("b", 0, True), ("b", 1, True)])
    from repro.core.predicates import predicates_for

    existing = PredicateSet(predicates_for(program, "main", ["x > 0", "x < 0"]))
    result = analyze_path(program, steps, existing_predicates=existing)
    assert not result.feasible
    names = {p.name for p in result.new_predicates}
    assert "x>0" not in names and "x<0" not in names


def test_assignment_equality_predicates_discovered():
    program = parse_c_program(
        """
        void main(int a) {
            int old;
            old = a;
            a = a + 1;
            if (a == old) { }
        }
        """
    )
    steps = steps_for(program, "main", [("s", 0), ("s", 1), ("b", 2, True)])
    result = analyze_path(program, steps)
    assert not result.feasible
    names = {p.name for p in result.new_predicates}
    assert "a==old" in names


def test_core_minimization_drops_irrelevant():
    program = parse_c_program(
        """
        void main(int a, int b) {
            if (b > 5) { }
            if (a > 0) { }
            if (a < 0) { }
        }
        """
    )
    steps = steps_for(
        program, "main", [("b", 0, True), ("b", 1, True), ("b", 2, True)]
    )
    result = analyze_path(program, steps)
    assert not result.feasible
    # b > 5 is irrelevant to the contradiction.
    core_sources = {c.source_expr for c in result.core}
    from repro.cfront import parse_expression

    assert parse_expression("b > 5") not in core_sources


def test_heap_write_havocs_keeps_feasibility():
    # Heap coarseness: a write through one pointer must not let the
    # simulator wrongly refute a path reading through another.
    program = parse_c_program(
        """
        struct s { int f; };
        void main(struct s *p, struct s *q) {
            p->f = 1;
            if (q->f == 2) { }
        }
        """
    )
    steps = steps_for(program, "main", [("s", 0), ("b", 1, True)])
    result = analyze_path(program, steps)
    assert result.feasible  # q may not alias p


def test_same_pointer_value_tracked():
    program = parse_c_program(
        """
        struct s { int f; };
        void main(struct s *p) {
            p->f = 1;
            if (p->f == 2) { }
        }
        """
    )
    steps = steps_for(program, "main", [("s", 0), ("b", 1, True)])
    result = analyze_path(program, steps)
    assert not result.feasible


def test_extern_call_havocs_result():
    program = parse_c_program(
        """
        void main(void) {
            int x;
            x = 1;
            x = mystery();
            if (x == 5) { }
        }
        """
    )
    steps = steps_for(program, "main", [("s", 0), ("s", 1), ("b", 2, True)])
    result = analyze_path(program, steps)
    assert result.feasible  # mystery() may return 5


def test_global_initializers_respected():
    program = parse_c_program(
        "int g = 0; void main(void) { if (g == 1) { } }"
    )
    steps = steps_for(program, "main", [("b", 0, True)])
    result = analyze_path(program, steps)
    assert not result.feasible
