#!/usr/bin/env python3
"""Section 6.2: synthesizing the loop invariants of Necula's PCC examples.

For the array-bounds programs (kmp, qsort), the proof-carrying-code
compiler had to *generate* loop invariants like ``0 <= q && q <= m``.
Here C2bp + Bebop discover them automatically: we model the bounds as
predicates and read the invariant off the reachable-state BDD at the loop
head.  Every bounds assert in the programs is discharged.

Run:  python examples/loop_invariants.py
"""

from repro import Bebop, C2bp, parse_c_program, parse_predicate_file
from repro.programs import get_program


def analyze(name):
    study = get_program(name)
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    result = Bebop(boolean_program, main=study.entry).run()
    print("=== %s ===" % name)
    print(
        "  %d statements, %d predicates, %d prover calls"
        % (program.statement_count(), len(predicates), tool.stats.prover_calls)
    )
    for proc, label in study.labels:
        print("  loop invariant at %s/%s:" % (proc, label))
        print("      %s" % result.invariant_string(proc, label=label))
    if result.assertion_failures:
        print("  UNDISCHARGED asserts: %d" % len(result.assertion_failures))
    else:
        print("  all bounds asserts discharged.")
    print()


def main():
    analyze("kmp")
    analyze("qsort")


if __name__ == "__main__":
    main()
