#!/usr/bin/env python3
"""Watching the SLAM CEGAR loop refine an abstraction, iteration by
iteration, on the classic nPackets example.

With only the property-automaton state predicates, the abstraction cannot
see that the loop exits exactly when the lock was *not* released — Bebop
reports a (spurious) double-acquire. Newton walks the reported path in the
concrete C semantics, proves it infeasible, extracts the data predicates
that refute it, and the refined abstraction validates the driver.

Run:  python examples/cegar_refinement.py
"""

from repro import Bebop, C2bp, ExplicitEngine, Prover
from repro.cfront import cast as C
from repro.cfront import parse_c_program
from repro.core import Predicate, PredicateSet
from repro.newton import analyze_path, path_from_boolean_steps
from repro.slam import SafetySpec
from repro.slam.instrument import STATE_VAR, instrument_program

SOURCE = r"""
void main(void) {
    int nPackets, nPacketsOld, request;
    nPackets = 0;
    do {
        KeAcquireSpinLock();
        nPacketsOld = nPackets;
        request = *;
        if (request > 0) {
            KeReleaseSpinLock();
            nPackets = nPackets + 1;
        }
    } while (nPackets != nPacketsOld);
    KeReleaseSpinLock();
}
"""


def main():
    spec = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
    program = parse_c_program(SOURCE, "npackets.c")
    instrument_program(program, spec, entry="main")

    predicates = PredicateSet()
    for index, state in enumerate(spec.states):
        predicates.add(
            Predicate(C.BinOp("==", C.Id(STATE_VAR), C.IntLit(index)), None)
        )
    prover = Prover()

    for iteration in range(1, 9):
        print("=== iteration %d ===" % iteration)
        print(
            "predicates: %s"
            % ", ".join(
                "%s@%s" % (p.name, p.scope or "global")
                for p in predicates.all_predicates()
            )
        )
        tool = C2bp(program, predicates, prover=prover)
        boolean_program = tool.run()
        result = Bebop(boolean_program, main="main").run()
        print("C2bp: %d prover calls; Bebop: error reachable = %s"
              % (tool.stats.prover_calls, result.error_reached))
        if not result.error_reached:
            print()
            print("VALIDATED: the abstraction proves lock discipline.")
            return
        bool_path = ExplicitEngine(boolean_program, main="main").find_assertion_failure()
        c_path = path_from_boolean_steps(program, bool_path)
        print("Bebop counterexample (%d steps); asking Newton ..." % len(c_path))
        verdict = analyze_path(
            program, c_path, prover=prover, existing_predicates=predicates
        )
        if verdict.feasible:
            print("Newton: the path is FEASIBLE — a real bug.")
            return
        names = [p.name for p in verdict.new_predicates]
        print("Newton: path infeasible; new predicates: %s" % ", ".join(names))
        for predicate in verdict.new_predicates:
            predicates.add(predicate)
        print()
    print("iteration bound reached (don't know)")


if __name__ == "__main__":
    main()
