#!/usr/bin/env python3
"""Section 2 walkthrough: invariant detection in pointer-manipulating code.

Reproduces the paper's running example end to end:

1. abstract the list ``partition`` procedure (Figure 1a) with respect to
   the four predicates of Section 2.1, printing the boolean program
   (Figure 1b);
2. model check it with Bebop and print the invariant at label ``L``
   (Section 2.2);
3. use the decision procedures to *refine aliasing*: the invariant implies
   ``prev != curr``, i.e. ``*prev`` and ``*curr`` are never aliases at
   ``L`` — a fact flow-sensitive alias analyses miss.

Run:  python examples/pointer_invariants.py
"""

from repro import (
    Bebop,
    C2bp,
    Prover,
    parse_c_program,
    parse_expression,
    parse_predicate_file,
    print_bool_program,
)
from repro.cfront import cast as C
from repro.programs import get_program


def main():
    study = get_program("partition")
    program = parse_c_program(study.source, "partition.c")
    predicates = parse_predicate_file(study.predicate_text, program)

    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    print("=== BP(partition, E)  (compare with Figure 1b) ===")
    print(print_bool_program(boolean_program))

    result = Bebop(boolean_program, main="partition").run()
    invariant = result.invariant_string("partition", label="L")
    print("=== Bebop invariant at L ===")
    print(invariant)
    print("(the paper:  curr != NULL  &&  curr->val > v  && ")
    print("             (prev->val <= v || prev == NULL))")

    # Alias refinement (Section 2.2): a decision procedure derives
    # prev != curr from the invariant.
    prover = Prover()
    name_to_expr = {p.name: p.expr for p in predicates.for_procedure("partition")}
    goal = parse_expression("prev != curr")
    all_entailed = True
    for cube in result.invariant_cubes("partition", label="L"):
        antecedents = [
            name_to_expr[name] if value else C.negate(name_to_expr[name])
            for name, value in cube.items()
        ]
        if not prover.implies(antecedents, goal):
            all_entailed = False
    print("=== alias refinement ===")
    print("invariant implies prev != curr:", all_entailed)
    print("so *prev and *curr are never aliases at L.")


if __name__ == "__main__":
    main()
