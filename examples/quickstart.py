#!/usr/bin/env python3
"""Quickstart: predicate abstraction of a small C program.

Pipeline: parse C -> choose predicates -> C2bp builds the boolean program
-> Bebop computes reachable states -> read off an invariant.

Run:  python examples/quickstart.py
"""

from repro import (
    Bebop,
    C2bp,
    parse_c_program,
    parse_predicate_file,
    print_bool_program,
)

SOURCE = r"""
void main(int input) {
    int x, y;
    x = 0;
    y = 0;
    while (input > 0) {
        x = x + 1;
        y = y + 1;
        input = input - 1;
    }
TOP:
    if (x == 0) {
        y = 0;
    }
DONE:
    ;
}
"""

# Predicates are pure boolean C expressions, declared per procedure (or
# globally) in the paper's predicate-input-file format.
PREDICATES = """
main
x == 0, y == 0, input > 0
"""


def main():
    program = parse_c_program(SOURCE, name="quickstart.c")
    predicates = parse_predicate_file(PREDICATES, program)

    # C2bp: construct BP(P, E) — same control flow, boolean variables only.
    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    print("=== boolean program BP(P, E) ===")
    print(print_bool_program(boolean_program))
    print(
        "abstraction used %d theorem prover calls in %.2fs"
        % (tool.stats.prover_calls, tool.stats.seconds)
    )

    # Bebop: reachable states per label, as boolean functions over E.
    result = Bebop(boolean_program, main="main").run()
    for label in ("TOP", "DONE"):
        print("invariant at %s: %s" % (label, result.invariant_string("main", label=label)))

    # The correlation x == 0 <=> y == 0 survives the loop: Bebop computes
    # over *sets* of bit vectors, keeping variable correlations.
    for cube in result.invariant_cubes("main", label="DONE"):
        if cube.get("x==0") is True:
            assert cube.get("y==0") is True
    print("checked: at DONE, x == 0 implies y == 0")


if __name__ == "__main__":
    main()
