#!/usr/bin/env python3
"""Section 6.2 / Figure 3: the pointer-reversal traversal (``reverse``).

The ``mark`` procedure walks a list while reversing its ``next`` pointers,
then walks back restoring them.  The paper checks the shape property "for
every node h, h->next is the same before and after" by introducing
auxiliary variables ``h`` (an arbitrary node) and ``hnext = h->next`` and
abstracting over seven predicates.

This example shows both what works and where the quantifier-free,
statement-local abstraction reaches its limit (see EXPERIMENTS.md):

- the abstraction is built (this is the prover-call-heavy row of Table 2 —
  every pair of pointers may alias, defeating the cone of influence);
- Bebop computes a nontrivial invariant at END, and on many cubes the
  property is pinned;
- the restoring write ``this->next = tmp`` cannot be proven to
  re-establish ``h->next == hnext`` because no predicate relates the
  scratch variable ``tmp`` to ``hnext`` — a precision boundary the paper's
  Section 8 discussion of richer logics anticipates.

A concrete-execution check (the soundness replayer's substrate) confirms
the property *does* hold dynamically.

Run:  python examples/heap_shape.py
"""

from repro import Bebop, C2bp, parse_c_program, parse_predicate_file
from repro.cfront.interp import Interpreter
from repro.programs import get_program


def dynamic_check(program, values):
    """Execute mark concretely and verify every node's next is restored."""
    interp = Interpreter(program)
    head = interp.make_list(values, value_field="mark", next_field="next")
    # Clear the mark fields (make_list set them to the values).
    node, nodes = head, []
    while node != 0:
        node.value.field_cell("mark").value = 0
        nodes.append(node)
        node = node.value.field_cell("next").value
    before = [n.value.field_cell("next").value for n in nodes]
    h = nodes[len(nodes) // 2] if nodes else 0
    if h == 0:
        return True
    interp.run("mark", [head, h])
    after = [n.value.field_cell("next").value for n in nodes]
    return before == after


def main():
    study = get_program("reverse")
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)

    print("abstracting mark() over %d predicates ..." % len(predicates))
    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    print(
        "  %d prover calls (the expensive Table 2 row: all-pairs aliasing)"
        % tool.stats.prover_calls
    )

    result = Bebop(boolean_program, main="mark").run()
    cubes = result.invariant_cubes("mark", label="END")
    pinned = sum(1 for cube in cubes if cube.get("h->next==hnext") is True)
    print("  invariant at END has %d cubes; %d pin h->next == hnext" % (len(cubes), pinned))
    print("  (see EXPERIMENTS.md for why the remaining cubes are out of")
    print("   reach for statement-local quantifier-free abstraction)")

    for values in ([1, 2, 3], [5], [1, 2, 3, 4, 5, 6]):
        fresh = parse_c_program(study.source, study.name)
        ok = dynamic_check(fresh, values)
        print("  dynamic check on a %d-node list: next pointers restored = %s" % (len(values), ok))


if __name__ == "__main__":
    main()
