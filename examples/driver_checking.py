#!/usr/bin/env python3
"""Section 6.1: checking temporal safety properties of device drivers.

Runs the SLAM toolkit (C2bp + Bebop + Newton in the CEGAR loop) over the
driver corpus for two properties:

- **lock discipline**: a spin lock is never acquired twice nor released
  without being held;
- **IRP completion**: an I/O request packet is never completed twice.

As in the paper, the exemplar drivers validate and the in-development
``floppy`` driver is caught mishandling an IRP — with a concrete,
non-spurious error trace.

Run:  python examples/driver_checking.py
"""

from repro import SafetySpec, check_property
from repro.programs import all_drivers


def main():
    lock_spec = SafetySpec.lock_discipline(
        "KeAcquireSpinLock", "KeReleaseSpinLock"
    )
    irp_spec = SafetySpec.complete_exactly_once("IoCompleteRequest")

    print("%-10s %-12s %-8s %-10s %s" % ("driver", "property", "verdict", "iterations", "predicates"))
    print("-" * 60)
    traces = {}
    for driver in all_drivers():
        for spec in (lock_spec, irp_spec):
            result = check_property(
                driver.source, spec, entry=driver.entry, max_iterations=8
            )
            print(
                "%-10s %-12s %-8s %-10d %d"
                % (
                    driver.name,
                    spec.name,
                    result.verdict,
                    result.iterations,
                    len(result.predicates),
                )
            )
            if result.verdict == "unsafe":
                traces[(driver.name, spec.name)] = result

    for (driver_name, spec_name), result in traces.items():
        print()
        print("=== error trace: %s violates %s ===" % (driver_name, spec_name))
        for line in result.error_trace_lines():
            print("   ", line)
        print("(Newton confirmed this path is feasible: SLAM never reports")
        print(" spurious error paths.)")


if __name__ == "__main__":
    main()
