"""The incremental theory engine against the stateless reference.

Two configurations, both under the ``allsat`` strengthening default:

- ``stateless``: ``theory_incremental=False`` — every theory query
  canonicalizes its literal set and runs the full Nelson-Oppen
  congruence-closure + Fourier-Motzkin pipeline from scratch (the PR-7
  behavior);
- ``incremental``: one :class:`repro.prover.theory.IncrementalTheory`
  session per cube session — difference-bound queries retarget the
  persistent DBM by push/pop deltas, out-of-fragment queries hit the
  per-session result and entailed-equality caches.

Two workloads: the Table-2 corpus through C2bp and the Table-1 drivers
through the CEGAR loop for both properties.  The engine is an
optimization, never a semantic change, so the bar is byte-identity of
every printed boolean program and identical CEGAR verdicts/iterations —
plus the headline perf claim: incremental ``time_in_generalize`` on the
Table-2 corpus at most 0.75x the stateless total.  Results land in
``benchmarks/results/BENCH_theory.json`` plus a rendered table.

``-k smoke`` selects the fixture-free fast checks used by CI.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_json, write_table

from repro import (
    C2bp,
    SafetySpec,
    check_property,
    parse_c_program,
    parse_predicate_file,
)
from repro.boolprog.printer import print_bool_program
from repro.core import C2bpOptions
from repro.engine import EngineContext
from repro.programs import all_drivers, all_table2_programs, get_program

CONFIGS = [
    ("stateless", {"strengthen": "allsat", "theory_incremental": False}),
    ("incremental", {"strengthen": "allsat", "theory_incremental": True}),
]

LOCK = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
IRP = SafetySpec.complete_exactly_once("IoCompleteRequest")

#: The two cheapest corpus members, used by the CI smoke job.
SMOKE_PROGRAMS = ("partition", "listfind")

#: How much of the stateless time_in_generalize total the incremental
#: engine must shave on the Table-2 corpus (the acceptance bar is 25%).
_GENERALIZE_RATIO = 0.75

_STAT_FIELDS = (
    "queries",
    "calls",
    "queries_discharged",
    "theory_delta_queries",
    "theory_cache_hits",
    "allsat_sweep_theory_deltas",
    "time_in_encode",
    "time_in_solve",
    "time_in_generalize",
    "time_in_theory_closure",
    "time_in_theory_cache",
)


def _abstract_study(study, **option_kwargs):
    """One Table-2 program through C2bp under one configuration."""
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    with EngineContext(options=C2bpOptions(**option_kwargs)) as context:
        started = time.perf_counter()
        tool = C2bp(program, predicates, context=context)
        boolean_program = tool.run()
        elapsed = time.perf_counter() - started
        stats = tool.prover.stats
        return {
            "text": print_bool_program(boolean_program),
            "seconds": elapsed,
            "stats": {name: getattr(stats, name) for name in _STAT_FIELDS},
        }


def _check_driver(driver, spec, **option_kwargs):
    """One Table-1 driver through the CEGAR loop under one configuration."""
    with EngineContext(options=C2bpOptions(**option_kwargs)) as context:
        started = time.perf_counter()
        result = check_property(
            driver.source, spec, entry=driver.entry, max_iterations=8,
            context=context,
        )
        elapsed = time.perf_counter() - started
        stats = context.prover.stats
        return {
            "verdict": result.verdict,
            "iterations": result.iterations,
            "seconds": elapsed,
            "stats": {name: getattr(stats, name) for name in _STAT_FIELDS},
        }


def _assert_theory_stats(label, row_stats, where):
    if label == "incremental":
        assert row_stats["theory_delta_queries"] > 0, (
            "%s/%s: theory engine never took the fragment fast path"
            % (label, where)
        )
    else:
        assert row_stats["theory_delta_queries"] == 0, (
            "%s/%s: stateless config ran the incremental engine"
            % (label, where)
        )
        assert row_stats["time_in_theory_closure"] == 0.0, (
            "%s/%s: stateless config charged closure time" % (label, where)
        )


def test_bench_theory_engine(benchmark):
    studies = all_table2_programs()
    drivers = all_drivers()

    def run_all():
        table2 = {
            label: {
                study.name: _abstract_study(study, **kwargs)
                for study in studies
            }
            for label, kwargs in CONFIGS
        }
        cegar = {
            label: {
                "%s/%s" % (driver.name, key): _check_driver(driver, spec, **kwargs)
                for driver in drivers
                for key, spec in (("lock", LOCK), ("irp", IRP))
            }
            for label, kwargs in CONFIGS
        }
        return table2, cegar

    table2, cegar = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Differential identity: the engine may only change timings, never
    # output — byte-identical boolean programs, identical verdicts.
    for study in studies:
        texts = {
            label: table2[label][study.name]["text"] for label, _ in CONFIGS
        }
        assert len(set(texts.values())) == 1, "configs disagree on %s" % study.name
        for label, _ in CONFIGS:
            _assert_theory_stats(
                label, table2[label][study.name]["stats"], study.name
            )
    for key in cegar["stateless"]:
        assert (
            cegar["stateless"][key]["verdict"] == cegar["incremental"][key]["verdict"]
        ), key
        assert (
            cegar["stateless"][key]["iterations"]
            == cegar["incremental"][key]["iterations"]
        ), key

    def total(label, field):
        return sum(row["stats"][field] for row in table2[label].values())

    # The headline claim: persistent theory state cuts the generalize
    # phase by at least a quarter on the Table-2 corpus.
    stateless_generalize = total("stateless", "time_in_generalize")
    incremental_generalize = total("incremental", "time_in_generalize")
    assert incremental_generalize <= _GENERALIZE_RATIO * stateless_generalize, (
        "time_in_generalize %.2fs -> %.2fs: less than a 25%% cut"
        % (stateless_generalize, incremental_generalize)
    )
    assert C2bpOptions().theory_incremental

    payload = {
        "generalize_ratio": round(
            incremental_generalize / stateless_generalize, 3
        )
        if stateless_generalize
        else None,
        "table2": {
            label: {
                name: {
                    "seconds": round(row["seconds"], 3),
                    "stats": row["stats"],
                }
                for name, row in entry.items()
            }
            for label, entry in table2.items()
        },
        "cegar_drivers": {
            label: {
                name: dict(row, seconds=round(row["seconds"], 3))
                for name, row in entry.items()
            }
            for label, entry in cegar.items()
        },
    }
    write_json("BENCH_theory", payload)

    rows = []
    for label, _ in CONFIGS:
        rows.append(
            [
                label,
                "%.2f" % sum(row["seconds"] for row in table2[label].values()),
                total(label, "calls"),
                total(label, "theory_delta_queries"),
                total(label, "theory_cache_hits"),
                total(label, "allsat_sweep_theory_deltas"),
                "%.2f" % total(label, "time_in_generalize"),
                "%.2f" % total(label, "time_in_theory_closure"),
                "%.2f" % total(label, "time_in_theory_cache"),
            ]
        )
    write_table(
        "BENCH_theory",
        [
            "config",
            "seconds",
            "prover calls",
            "theory deltas",
            "cache hits",
            "sweep deltas",
            "t_generalize",
            "t_closure",
            "t_cache",
        ],
        rows,
        notes=[
            "Table-2 corpus under allsat strengthening, stateless theory "
            "vs the incremental difference-bound engine; both print "
            "byte-identical boolean programs and the incremental config "
            "cuts time_in_generalize by at least 25%.  The CEGAR driver "
            "rows (both Table-1 properties, identical verdicts and "
            "iteration counts) are in BENCH_theory.json.",
        ],
    )


def test_smoke_theory_identity():
    """CI smoke (no benchmark fixture): both theory configurations agree
    byte-for-byte on the two smallest corpus programs and report the
    expected engine counters."""
    for name in SMOKE_PROGRAMS:
        study = get_program(name)
        rows = {
            label: _abstract_study(study, **kwargs) for label, kwargs in CONFIGS
        }
        texts = {label: row["text"] for label, row in rows.items()}
        assert len(set(texts.values())) == 1, "configs disagree on %s" % name
        for label, row in rows.items():
            _assert_theory_stats(label, row["stats"], name)


def test_smoke_theory_sweep_deltas_engage():
    """CI smoke: the AllSAT sweep routes its model checks through the
    session theory engine (the engine's best customer)."""
    study = get_program("partition")
    row = _abstract_study(study, strengthen="allsat")
    assert row["stats"]["allsat_sweep_theory_deltas"] > 0
    assert row["stats"]["theory_delta_queries"] >= row["stats"][
        "allsat_sweep_theory_deltas"
    ]
