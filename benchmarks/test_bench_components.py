"""Microbenchmarks for the substrates (not a paper table; engineering
health checks for the pieces the experiments rely on)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

import random

from repro.bdd import BddManager
from repro.cfront import parse_c_program
from repro.prover import Prover
from repro.prover.sat import SatSolver
from repro.cfront import parse_expression


def test_bench_sat_random_3cnf(benchmark):
    rng = random.Random(11)
    clauses = []
    num_vars = 40
    for _ in range(160):
        clause = [
            rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)
        ]
        clauses.append(clause)

    def solve():
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    result = benchmark(solve)
    assert result.sat in (True, False)


def test_bench_prover_cube_query(benchmark):
    prover = Prover(enable_cache=False)
    antecedents = [
        parse_expression("x == 2"),
        parse_expression("y > x"),
        parse_expression("p->val <= y"),
    ]
    goal = parse_expression("p->val < 4 || y > 2")

    def query():
        return prover.implies(antecedents, goal)

    assert benchmark(query) is True


def test_bench_bdd_exists_chain(benchmark):
    manager = BddManager()

    def build():
        acc = manager.true
        for index in range(0, 24, 2):
            acc = manager.land(
                acc, manager.iff(manager.var(index), manager.var(index + 1))
            )
        return manager.exists(acc, range(0, 24, 2))

    result = benchmark(build)
    assert result is manager.true


def test_bench_parse_and_lower_partition(benchmark):
    from repro.programs import get_program

    source = get_program("partition").source

    def parse():
        return parse_c_program(source, "partition.c")

    program = benchmark(parse)
    assert "partition" in program.functions
