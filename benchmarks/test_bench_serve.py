"""The content-addressed persistent cache: cold vs warm vs near-repeat.

Three measured configurations over the Table-2 corpus, all against one
``--cache-dir`` store:

- ``cold``: an empty store — every prover answer, statement
  abstraction, and compiled Bebop table is computed and written through;
- ``warm``: the identical submission again — everything is answered
  from disk (the verification-as-a-service steady state);
- ``near-repeat``: the source with one new trailing procedure appended
  (the typical edit-recompile-reverify loop) — unchanged statements hit,
  only the new procedure pays.

Each configuration is compared byte-for-byte against the uncached
pipeline on the same source, and the headline claims are enforced:
the warm corpus pass is at least 3x faster than the cold one, and the
near-repeat pass at least 2x faster than abstracting its edited source
uncached.  Results land in ``benchmarks/results/BENCH_serve.json`` plus
a rendered table.

``-k smoke`` selects the timing-free identity + hit-rate-floor checks
used by CI.
"""

import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_json, write_table

from repro import C2bp, parse_c_program, parse_predicate_file
from repro.boolprog.printer import print_bool_program
from repro.core import C2bpOptions
from repro.engine import EngineContext
from repro.programs import all_table2_programs, get_program

#: The two cheapest corpus members, used by the CI smoke job.
SMOKE_PROGRAMS = ("partition", "listfind")

#: The near-repeat edit: a new procedure appended after the existing
#: text, so every earlier statement's identity (and cache key) is
#: untouched.  The ``__bench`` names cannot collide with corpus code.
NEAR_REPEAT_PAD = "\nint __bench_pad(int __bench_x) { return __bench_x; }\n"


def _abstract(study, source, cache_dir):
    """One corpus program through C2bp; returns text, timing, and the
    store/prover counters the rows report."""
    program = parse_c_program(source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    options = C2bpOptions(cache_dir=cache_dir)
    with EngineContext(options=options) as context:
        started = time.perf_counter()
        tool = C2bp(program, predicates, context=context)
        boolean_program = tool.run()
        elapsed = time.perf_counter() - started
        store = (
            context.store.counters_with_namespaces()
            if context.store is not None
            else {}
        )
        return {
            "text": print_bool_program(boolean_program),
            "seconds": elapsed,
            "prover_calls": tool.prover.stats.calls,
            "store": store,
        }


def _run_corpus(cache_dir):
    """cold/warm/near-repeat rows for every Table-2 program, interleaved
    with the uncached baselines they must match byte-for-byte."""
    rows = {}
    for study in all_table2_programs():
        edited = study.source + NEAR_REPEAT_PAD
        baseline = _abstract(study, study.source, None)
        edited_baseline = _abstract(study, edited, None)
        cold = _abstract(study, study.source, cache_dir)
        warm = _abstract(study, study.source, cache_dir)
        near = _abstract(study, edited, cache_dir)
        assert cold["text"] == baseline["text"], study.name
        assert warm["text"] == baseline["text"], study.name
        assert near["text"] == edited_baseline["text"], study.name
        rows[study.name] = {
            "uncached": baseline,
            "uncached_edited": edited_baseline,
            "cold": cold,
            "warm": warm,
            "near_repeat": near,
        }
    return rows


def _corpus_seconds(rows, label):
    return sum(entry[label]["seconds"] for entry in rows.values())


def _hit_rate(store):
    total = store.get("hits", 0) + store.get("misses", 0)
    return store.get("hits", 0) / total if total else 0.0


def test_bench_serve_cold_warm_near_repeat(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        rows = benchmark.pedantic(
            lambda: _run_corpus(cache_dir), rounds=1, iterations=1
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    cold = _corpus_seconds(rows, "cold")
    warm = _corpus_seconds(rows, "warm")
    near = _corpus_seconds(rows, "near_repeat")
    edited_uncached = _corpus_seconds(rows, "uncached_edited")

    # Headline claims.
    assert warm * 3 <= cold, "warm %.3fs vs cold %.3fs" % (warm, cold)
    assert near * 2 <= edited_uncached, (
        "near-repeat %.3fs vs uncached %.3fs" % (near, edited_uncached)
    )
    for name, entry in rows.items():
        assert entry["warm"]["prover_calls"] == 0, name
        assert _hit_rate(entry["warm"]["store"]) >= 0.95, name

    payload = {
        "corpus_seconds": {
            "uncached": round(_corpus_seconds(rows, "uncached"), 3),
            "cold": round(cold, 3),
            "warm": round(warm, 3),
            "near_repeat": round(near, 3),
            "uncached_edited": round(edited_uncached, 3),
        },
        "speedups": {
            "warm_vs_cold": round(cold / warm, 1) if warm else None,
            "near_repeat_vs_uncached": (
                round(edited_uncached / near, 1) if near else None
            ),
        },
        "programs": {
            name: {
                label: {
                    "seconds": round(row["seconds"], 4),
                    "prover_calls": row["prover_calls"],
                    "store": row["store"],
                }
                for label, row in entry.items()
            }
            for name, entry in rows.items()
        },
    }
    write_json("BENCH_serve", payload)

    table_rows = []
    for name, entry in rows.items():
        table_rows.append(
            [
                name,
                "%.3f" % entry["cold"]["seconds"],
                "%.3f" % entry["warm"]["seconds"],
                "%.3f" % entry["near_repeat"]["seconds"],
                entry["cold"]["prover_calls"],
                entry["warm"]["prover_calls"],
                entry["near_repeat"]["prover_calls"],
                "%.0f%%" % (100 * _hit_rate(entry["warm"]["store"])),
            ]
        )
    table_rows.append(
        [
            "TOTAL",
            "%.3f" % cold,
            "%.3f" % warm,
            "%.3f" % near,
            sum(e["cold"]["prover_calls"] for e in rows.values()),
            sum(e["warm"]["prover_calls"] for e in rows.values()),
            sum(e["near_repeat"]["prover_calls"] for e in rows.values()),
            "",
        ]
    )
    write_table(
        "BENCH_serve",
        [
            "program",
            "t_cold",
            "t_warm",
            "t_near",
            "calls_cold",
            "calls_warm",
            "calls_near",
            "warm hit rate",
        ],
        table_rows,
        notes=[
            "Table-2 corpus through C2bp against one content-addressed "
            "--cache-dir store.  Every cached run is byte-identical to the "
            "uncached pipeline on the same source; the warm corpus pass "
            "answers everything from disk (zero prover calls) and the "
            "near-repeat pass (one new trailing procedure) pays only for "
            "the new code.  Enforced floors: warm >= 3x over cold, "
            "near-repeat >= 2x over abstracting the edited source "
            "uncached.",
        ],
    )


def test_smoke_cache_identity_and_hit_floor():
    """CI smoke (timing-free): cold and warm runs print the uncached
    bytes on the two smallest corpus programs, the warm run clears a 95%
    store hit rate with zero prover calls, and the near-repeat run hits
    the unchanged statements."""
    for name in SMOKE_PROGRAMS:
        study = get_program(name)
        cache_dir = tempfile.mkdtemp(prefix="bench-serve-smoke-")
        try:
            baseline = _abstract(study, study.source, None)
            cold = _abstract(study, study.source, cache_dir)
            warm = _abstract(study, study.source, cache_dir)
            assert cold["text"] == baseline["text"], name
            assert warm["text"] == baseline["text"], name
            assert warm["prover_calls"] == 0, name
            assert _hit_rate(warm["store"]) >= 0.95, name
            edited = study.source + NEAR_REPEAT_PAD
            edited_baseline = _abstract(study, edited, None)
            near = _abstract(study, edited, cache_dir)
            assert near["text"] == edited_baseline["text"], name
            assert near["store"].get("hits", 0) > 0, name
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
