"""Figure 1 + Section 2.2: the partition example, end to end.

Regenerates:

- Figure 1(b): the boolean program for ``partition`` under the four
  Section 2.1 predicates, asserting the paper's per-statement
  translations;
- the Section 2.2 Bebop invariant at label L and its alias-refinement
  consequence ``prev != curr``.

The benchmark times the C2bp abstraction (the prover-bound phase).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_table

from repro import (
    Bebop,
    C2bp,
    Prover,
    parse_c_program,
    parse_expression,
    parse_predicate_file,
)
from repro.boolprog import BAssign, BConst, BSkip, BUnknown, BVar
from repro.cfront import cast as C
from repro.programs import get_program


def _build():
    study = get_program("partition")
    program = parse_c_program(study.source, "partition.c")
    predicates = parse_predicate_file(study.predicate_text, program)
    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    return program, predicates, tool, boolean_program


def _find(stmts, text):
    out = []

    def visit(body):
        for stmt in body:
            if stmt.comment and text in stmt.comment:
                out.append(stmt)
            for sub in stmt.substatements():
                visit(sub)

    visit(stmts)
    return out


def test_figure1_boolean_program(benchmark):
    program, predicates, tool, boolean_program = benchmark.pedantic(
        _build, rounds=1, iterations=1
    )
    proc = boolean_program.procedures["partition"]

    # Figure 1(b)'s statement-by-statement translations.
    (prev_null,) = _find(proc.body, "prev = 0;")
    updates = dict(zip(prev_null.targets, prev_null.values))
    assert updates["prev==0"] == BConst(True)
    assert isinstance(updates["prev->val>v"], BUnknown)

    (prev_curr,) = _find(proc.body, "prev = curr;")
    updates = dict(zip(prev_curr.targets, prev_curr.values))
    assert updates["prev==0"] == BVar("curr==0")
    assert updates["prev->val>v"] == BVar("curr->val>v")

    (newl_null,) = _find(proc.body, "newl = 0;")
    assert isinstance(newl_null, BSkip)

    (curr_next,) = _find(proc.body, "curr = nextcurr;")
    assert isinstance(curr_next, BAssign)
    assert all(isinstance(v, BUnknown) for v in curr_next.values)

    for text in ("prev->next = nextcurr;", "curr->next = newl;", "*l = nextcurr;"):
        (stmt,) = _find(proc.body, text)
        assert isinstance(stmt, BSkip), text

    # Section 2.2: the invariant at L and the alias refinement.
    result = Bebop(boolean_program, main="partition").run()
    cubes = result.invariant_cubes("partition", label="L")
    assert cubes
    for cube in cubes:
        assert cube["curr==0"] is False
        assert cube["curr->val>v"] is True
        assert cube.get("prev->val>v") is False or cube.get("prev==0") is True

    prover = Prover()
    name_to_expr = {p.name: p.expr for p in predicates.for_procedure("partition")}
    goal = parse_expression("prev != curr")
    for cube in cubes:
        antecedents = [
            name_to_expr[n] if value else C.negate(name_to_expr[n])
            for n, value in cube.items()
        ]
        assert prover.implies(antecedents, goal)

    write_table(
        "figure1_section2",
        ["artifact", "paper", "reproduced"],
        [
            ["prev = NULL", "{prev==NULL}=true; {prev->val>v}=unknown()", "same"],
            ["prev = curr", "copy of curr predicates", "same"],
            ["newl = NULL", "skip", "same"],
            ["curr = nextcurr", "both predicates unknown()", "same"],
            ["field stores", "skip", "same"],
            [
                "invariant at L",
                "curr!=NULL && curr->val>v && (prev->val<=v || prev==NULL)",
                result.invariant_string("partition", label="L"),
            ],
            ["invariant => prev != curr", "yes (decision procedure)", "yes"],
            ["prover calls", "(not reported per-figure)", tool.stats.prover_calls],
        ],
    )


def test_figure1_model_checking_speed(benchmark):
    _, _, _, boolean_program = _build()

    def check():
        return Bebop(boolean_program, main="partition").run()

    result = benchmark(check)
    assert result.invariant_cubes("partition", label="L")
