"""Shared helpers for the benchmark harness: row formatting and result
files under ``benchmarks/results/``.

Every experiment writes the regenerated table rows both to stdout and to a
results file, so ``pytest benchmarks/ --benchmark-only`` leaves the
reproduced tables on disk next to the timing report; EXPERIMENTS.md
references these files.
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_json(name, payload):
    """Write a machine-readable result document (``<name>.json``) next to
    the rendered tables; returns the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_table(name, header, rows, notes=()):
    """Format rows as a fixed-width table; write and return the text."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    widths = [len(h) for h in header]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    for note in notes:
        lines.append("")
        lines.append(note)
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text)
    print()
    print("=== %s ===" % name)
    print(text)
    return text
