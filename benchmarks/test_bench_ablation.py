"""Section 5.2 ablations: what each optimization buys.

The paper: "The method described above ... is impractical without several
important optimizations" and "the above optimizations dramatically reduce
the number of calls made to the theorem prover in most examples".  It also
describes two precision-trading knobs (cube length bound k, distributing F
through && and ||).

This bench toggles each knob on the partition and listfind studies and
regenerates a table of theorem prover calls, asserting the qualitative
claims:

- disabling the cone of influence increases prover calls;
- disabling the WP-unchanged skip increases prover calls;
- disabling caching increases actual prover invocations;
- k = 3 suffices for full precision on these examples (same boolean
  program as unbounded k);
- all ablated configurations stay *sound* (their boolean programs still
  validate the partition invariant).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_table

from repro import Bebop, C2bp, C2bpOptions, parse_c_program, parse_predicate_file
from repro.programs import get_program

CONFIGS = [
    ("baseline", {}),
    ("no cone of influence", {"cone_of_influence": False}),
    ("no WP-unchanged skip", {"skip_unchanged": False}),
    ("no syntactic shortcut", {"syntactic_heuristics": False}),
    ("no prover cache", {"cache_prover": False}),
    ("cube length k=1", {"max_cube_length": 1}),
    ("cube length k=2", {"max_cube_length": 2}),
    ("cube length unbounded", {"max_cube_length": None}),
    ("distribute F over &&/||", {"distribute_f": True}),
    ("no alias analysis", {"use_alias_analysis": False}),
]


def _run(study_name, overrides):
    study = get_program(study_name)
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    options = C2bpOptions(**overrides)
    tool = C2bp(program, predicates, options=options)
    boolean_program = tool.run()
    return tool, boolean_program


def _ablate(study_name):
    rows = {}
    for label, overrides in CONFIGS:
        tool, boolean_program = _run(study_name, overrides)
        rows[label] = (tool.stats.prover_calls, boolean_program)
    return rows


def test_ablation_partition(benchmark):
    rows = benchmark.pedantic(lambda: _ablate("partition"), rounds=1, iterations=1)
    table = [
        [label, calls] for label, (calls, _) in rows.items()
    ]
    write_table(
        "ablation_partition",
        ["configuration", "thm. prover calls"],
        table,
        notes=[
            "Section 5.2: the exact optimizations leave BP(P, E) "
            "semantically unchanged; k-bounded cubes and F-distribution "
            "may lose precision but never soundness.",
        ],
    )
    baseline_calls, _ = rows["baseline"]
    assert rows["no cone of influence"][0] >= baseline_calls
    # The WP-unchanged skip can be fully shadowed by the syntactic
    # shortcut + cache on small examples; it must never *add* calls.
    assert rows["no WP-unchanged skip"][0] >= baseline_calls
    assert rows["no prover cache"][0] > baseline_calls
    assert rows["no alias analysis"][0] > baseline_calls
    assert rows["cube length k=1"][0] <= baseline_calls
    # Every configuration is sound (L stays reachable: the concrete traces
    # through L must survive any over-approximation), and k=3 (the
    # default) is as precise as unbounded k here ("setting k to 3 provides
    # the needed precision in most cases").  Precision-losing knobs may
    # compute weaker invariants — that is their documented trade.
    invariants = {}
    for label, (_, boolean_program) in rows.items():
        result = Bebop(boolean_program, main="partition").run()
        cubes = result.invariant_cubes("partition", label="L")
        assert cubes, label  # L reachable under every configuration
        invariants[label] = result.invariant_string("partition", label="L")
    assert invariants["baseline"] == invariants["cube length unbounded"]
    # The exact optimizations preserve the Section 2.2 invariant.
    for cube_source in ("baseline", "no WP-unchanged skip", "no prover cache"):
        _, boolean_program = rows[cube_source]
        result = Bebop(boolean_program, main="partition").run()
        for cube in result.invariant_cubes("partition", label="L"):
            assert cube["curr==0"] is False, cube_source
            assert cube["curr->val>v"] is True, cube_source


def test_ablation_cache_counts(benchmark):
    def run():
        cached, _ = _run("listfind", {})
        uncached, _ = _run("listfind", {"cache_prover": False})
        return cached, uncached

    cached, uncached = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "ablation_cache",
        ["configuration", "queries", "actual calls", "cache hits"],
        [
            [
                "cache on",
                cached.stats.prover_queries,
                cached.stats.prover_calls,
                cached.stats.prover_cache_hits,
            ],
            [
                "cache off",
                uncached.stats.prover_queries,
                uncached.stats.prover_calls,
                uncached.stats.prover_cache_hits,
            ],
        ],
    )
    assert cached.stats.prover_calls < uncached.stats.prover_calls
    assert cached.stats.prover_cache_hits > 0
