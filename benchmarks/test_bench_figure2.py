"""Figure 2 / Section 4.5: signatures and call abstraction.

Regenerates the paper's worked example: the signature of ``bar``
(E_f = {*q<=y, y>=0}, E_r = {y==l1, *q<=y}), the abstraction of
``*p = *p + x``, and the ``choose`` structure of the call ``bar(p, x)``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_table

from repro import C2bp, parse_c_program, parse_predicate_file
from repro.boolprog import BCall, BChoose, BConst, BVar
from repro.boolprog.ast import expr_variables

FIGURE2_SRC = r"""
int bar(int* q, int y) {
    int l1, l2;
    l1 = y;
    l2 = y - 1;
    return l1;
}

void foo(int* p, int x) {
    int r;
    if (*p <= x) {
        *p = x;
    } else {
        *p = *p + x;
    }
    r = bar(p, x);
}
"""

FIGURE2_PREDS = """
bar
y >= 0, *q <= y, y == l1, y > l2

foo
*p <= 0, x == 0, r == 0
"""


def _flatten(stmts):
    out = []
    for stmt in stmts:
        out.append(stmt)
        for sub in stmt.substatements():
            out.extend(_flatten(sub))
    return out


def _build():
    program = parse_c_program(FIGURE2_SRC, "figure2.c")
    predicates = parse_predicate_file(FIGURE2_PREDS, program)
    tool = C2bp(program, predicates)
    return tool, tool.run()


def test_figure2_signatures_and_call(benchmark):
    tool, boolean_program = benchmark.pedantic(_build, rounds=1, iterations=1)
    signature = tool.signatures["bar"]
    formal_names = {p.name for p in signature.formal_predicates}
    return_names = {p.name for p in signature.return_predicates}
    assert formal_names == {"y>=0", "*q<=y"}
    assert return_names == {"y==l1", "*q<=y"}

    foo = boolean_program.procedures["foo"]
    calls = [s for s in _flatten(foo.body) if isinstance(s, BCall)]
    assert len(calls) == 1
    call = calls[0]
    index = [p.name for p in signature.formal_predicates].index("y>=0")
    arg = call.args[index]
    assert isinstance(arg, BChoose)
    assert arg.pos == BVar("x==0") and arg.neg == BConst(False)

    flat = _flatten(foo.body)
    update = flat[flat.index(call) + 1]
    updates = dict(zip(update.targets, update.values))
    assert set(updates) == {"*p<=0", "r==0"}
    temp_names = set(call.targets)
    for value in updates.values():
        assert any(
            name in temp_names for name in expr_variables(value.pos)
        )

    write_table(
        "figure2_calls",
        ["artifact", "paper", "reproduced"],
        [
            ["E_f(bar)", "{*q<=y, y>=0}", sorted(formal_names)],
            ["E_r(bar)", "{y==l1, *q<=y}", sorted(return_names)],
            ["actual for y>=0", "choose({x==0}, false)", "same"],
            ["call results", "t1, t2 = bar(prm1, prm2)", "%d temps" % len(call.targets)],
            ["post-call updates", "{*p<=0}, {r==0} from temps", sorted(updates)],
            ["prover calls", "(not reported)", tool.stats.prover_calls],
        ],
    )
