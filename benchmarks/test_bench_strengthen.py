"""The strengthening strategies and the persistent worker pool against
the fresh baseline.

Four configurations:

- ``fresh``: ``strengthen="cubes"``, ``incremental_cubes=False`` —
  re-encode and rebuild a SAT solver for every cube query (the
  pre-session baseline);
- ``incremental-cubes``: the cube-enumeration strategy on one
  assumption-based session per strengthening call (the previous
  default);
- ``allsat``: the AllSAT strategy — SAT-side cube answers come from an
  incremental model sweep over the session's encode-once solver (the
  new default);
- ``allsat+jobs``: the same plus the persistent worker pool
  (``jobs=4``).

Two workloads: the Table-2 corpus through C2bp (byte-identity of the
printed boolean programs, per-row merged prover statistics, wall-clock),
and the Table-1 drivers through the CEGAR loop for both properties
(fresh vs allsat; one engine context per run, so the prover cache — and
under ``--jobs`` the worker pool — persist across iterations).  Every
row must carry non-zero merged statistics (the ``--jobs`` stats blackout
is the regression this file pins), every configuration must print
byte-identical boolean programs, and the new default must strictly beat
the fresh baseline's Table-2 wall-clock.  Results land in
``benchmarks/results/BENCH_strengthen.json`` plus a rendered table.

``-k smoke`` selects the fixture-free fast checks used by CI.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_json, write_table

from repro import (
    C2bp,
    SafetySpec,
    check_property,
    parse_c_program,
    parse_predicate_file,
)
from repro.boolprog.printer import print_bool_program
from repro.core import C2bpOptions
from repro.engine import EngineContext
from repro.programs import all_drivers, all_table2_programs, get_program

CONFIGS = [
    ("fresh", {"strengthen": "cubes", "incremental_cubes": False}),
    ("incremental-cubes", {"strengthen": "cubes", "incremental_cubes": True}),
    ("allsat", {"strengthen": "allsat"}),
    ("allsat+jobs", {"strengthen": "allsat", "jobs": 4}),
]

LOCK = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
IRP = SafetySpec.complete_exactly_once("IoCompleteRequest")

#: The two cheapest corpus members, used by the CI smoke job.
SMOKE_PROGRAMS = ("partition", "listfind")

#: The merged prover counters each row records (and the smoke job checks
#: for the --jobs stats blackout).  Every row carries the full
#: time_in_{encode,solve,generalize} breakdown plus the incremental
#: theory engine's counters (BENCH_theory.json holds the dedicated
#: stateless-vs-incremental comparison).
_STAT_FIELDS = (
    "queries",
    "calls",
    "assumption_solves",
    "lemmas_learned",
    "allsat_sweeps",
    "allsat_models",
    "allsat_model_hits",
    "queries_discharged",
    "theory_delta_queries",
    "theory_cache_hits",
    "allsat_sweep_theory_deltas",
    "time_in_encode",
    "time_in_solve",
    "time_in_generalize",
    "time_in_theory_closure",
    "time_in_theory_cache",
)


def _abstract_study(study, **option_kwargs):
    """One Table-2 program through C2bp under one configuration; a fresh
    engine context per study keeps the configurations comparable."""
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    with EngineContext(options=C2bpOptions(**option_kwargs)) as context:
        started = time.perf_counter()
        tool = C2bp(program, predicates, context=context)
        boolean_program = tool.run()
        elapsed = time.perf_counter() - started
        stats = tool.prover.stats
        return {
            "text": print_bool_program(boolean_program),
            "seconds": elapsed,
            "stats": {name: getattr(stats, name) for name in _STAT_FIELDS},
        }


def _check_driver(driver, spec, **option_kwargs):
    """One Table-1 driver through the CEGAR loop under one configuration.
    One context for the whole run: the prover cache (and any worker
    pool) persists across the iterations."""
    with EngineContext(options=C2bpOptions(**option_kwargs)) as context:
        started = time.perf_counter()
        result = check_property(
            driver.source, spec, entry=driver.entry, max_iterations=8,
            context=context,
        )
        elapsed = time.perf_counter() - started
        stats = context.prover.stats
        return {
            "verdict": result.verdict,
            "iterations": result.iterations,
            "prover_calls": result.cegar.total_prover_calls,
            "seconds": elapsed,
            "stats": {name: getattr(stats, name) for name in _STAT_FIELDS},
        }


def _assert_row_stats(label, row_stats, where):
    """Every benchmark row must carry real merged numbers."""
    assert row_stats["queries"] > 0, "%s/%s: no queries recorded" % (label, where)
    assert row_stats["calls"] > 0, "%s/%s: no calls recorded" % (label, where)
    timed = (
        row_stats["time_in_encode"]
        + row_stats["time_in_solve"]
        + row_stats["time_in_generalize"]
    )
    assert timed > 0, "%s/%s: no time attribution" % (label, where)
    if label != "fresh":
        assert row_stats["assumption_solves"] > 0, (
            "%s/%s: incremental engine never engaged (stats blackout?)"
            % (label, where)
        )
    if label.startswith("allsat"):
        assert row_stats["allsat_sweeps"] > 0, "%s/%s: no sweeps" % (label, where)
        assert row_stats["allsat_models"] > 0, "%s/%s: no models" % (label, where)


def test_bench_strengthen_configs(benchmark):
    studies = all_table2_programs()
    drivers = all_drivers()

    def run_all():
        table2 = {
            label: {
                study.name: _abstract_study(study, **kwargs)
                for study in studies
            }
            for label, kwargs in CONFIGS
        }
        cegar = {
            label: {
                "%s/%s" % (driver.name, key): _check_driver(driver, spec, **kwargs)
                for driver in drivers
                for key, spec in (("lock", LOCK), ("irp", IRP))
            }
            for label, kwargs in (
                ("fresh", dict(CONFIGS[0][1])),
                ("allsat", dict(CONFIGS[2][1])),
            )
        }
        return table2, cegar

    table2, cegar = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Differential identity: every configuration prints the same program,
    # and every row carries real merged statistics.
    for study in studies:
        texts = {
            label: table2[label][study.name]["text"] for label, _ in CONFIGS
        }
        assert len(set(texts.values())) == 1, "configs disagree on %s" % study.name
    for label, _ in CONFIGS:
        for study in studies:
            _assert_row_stats(
                label, table2[label][study.name]["stats"], study.name
            )
    for key in cegar["fresh"]:
        assert cegar["fresh"][key]["verdict"] == cegar["allsat"][key]["verdict"], key
        assert (
            cegar["fresh"][key]["iterations"] == cegar["allsat"][key]["iterations"]
        ), key

    def corpus_seconds(label):
        return sum(row["seconds"] for row in table2[label].values())

    # The headline claim: the new default strictly beats the fresh
    # baseline's wall-clock on the Table-2 corpus.
    assert corpus_seconds("allsat") < corpus_seconds("fresh")
    assert C2bpOptions().strengthen == "allsat"

    payload = {
        "table2": {
            label: {
                name: {
                    "seconds": round(row["seconds"], 3),
                    "stats": row["stats"],
                }
                for name, row in entry.items()
            }
            for label, entry in table2.items()
        },
        "cegar_drivers": {
            label: {
                name: dict(row, seconds=round(row["seconds"], 3))
                for name, row in entry.items()
            }
            for label, entry in cegar.items()
        },
    }
    write_json("BENCH_strengthen", payload)

    rows = []
    for label, _ in CONFIGS:
        entry = table2[label]

        def total(field):
            return sum(row["stats"][field] for row in entry.values())

        rows.append(
            [
                label,
                "%.2f" % corpus_seconds(label),
                total("calls"),
                total("assumption_solves"),
                total("allsat_models"),
                total("allsat_model_hits"),
                "%.2f" % total("time_in_solve"),
                "%.2f" % total("time_in_generalize"),
            ]
        )
    write_table(
        "BENCH_strengthen",
        [
            "config",
            "seconds",
            "prover calls",
            "assumption solves",
            "allsat models",
            "model hits",
            "t_solve",
            "t_generalize",
        ],
        rows,
        notes=[
            "Table-2 corpus under the four strengthening configurations; "
            "all four print byte-identical boolean programs, every row "
            "carries merged (worker-inclusive) prover statistics, and the "
            "allsat default strictly beats the fresh baseline wall-clock.  "
            "The CEGAR driver rows (both Table-1 properties, fresh vs "
            "allsat, identical verdicts and iteration counts) are in "
            "BENCH_strengthen.json.",
        ],
    )


def test_smoke_strengthen_identity():
    """CI smoke (no benchmark fixture): all four configurations agree
    byte-for-byte on the two smallest corpus programs, and every row —
    including the --jobs one — reports non-zero merged statistics."""
    for name in SMOKE_PROGRAMS:
        study = get_program(name)
        rows = {
            label: _abstract_study(study, **kwargs) for label, kwargs in CONFIGS
        }
        texts = {label: row["text"] for label, row in rows.items()}
        assert len(set(texts.values())) == 1, "configs disagree on %s" % name
        for label, row in rows.items():
            _assert_row_stats(label, row["stats"], name)


def test_smoke_allsat_catalog_engages():
    """CI smoke: the model catalog answers real queries on partition."""
    study = get_program("partition")
    row = _abstract_study(study, strengthen="allsat")
    assert row["stats"]["allsat_model_hits"] > 0
    assert row["stats"]["allsat_sweeps"] > 0
