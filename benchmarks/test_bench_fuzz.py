"""Fuzzing throughput: generated cases per second through the full
oracle stack (generation, abstraction under two cube-engine configs,
three model-checking engines, concrete-vs-boolean trace replay).

Not a paper table — an engineering health check that keeps the
soundness net cheap enough to run on every PR. The table records where
the budget goes (replays, explicit-state checks, prover calls), so a
regression in fuzz wall-clock can be attributed.

``-k smoke`` selects the fixture-free fast subset used by CI.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_json, write_table

from repro.fuzz import FuzzSession


def _timed_session(count, seed, jobs_stride=0):
    session = FuzzSession(seed=seed, jobs_stride=jobs_stride)
    started = time.perf_counter()
    result = session.run(count)
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_fuzz_throughput_smoke():
    """Fast check: a small fixed-seed batch stays clean and finishes."""
    result, elapsed = _timed_session(6, "bench-smoke")
    assert result.ok, "\n".join(result.summary_lines())
    assert result.replays > 0
    assert elapsed < 120


def test_bench_fuzz_throughput():
    result, elapsed = _timed_session(50, "bench", jobs_stride=10)
    assert result.ok, "\n".join(result.summary_lines())
    rows = [
        [
            result.cases,
            "%.1f" % elapsed,
            "%.2f" % (result.cases / elapsed),
            result.replays,
            result.assert_trips,
            result.explicit_checked,
            result.jobs_checked,
            result.prover_calls,
        ]
    ]
    write_table(
        "BENCH_fuzz",
        [
            "cases",
            "seconds",
            "cases/s",
            "replays",
            "assert-ended",
            "explicit",
            "jobs-diff",
            "prover calls",
        ],
        rows,
        notes=[
            "Seed 'bench'; oracle = validate + incremental/fresh + fast/legacy/"
            "explicit engines + trace replay; --jobs differential every 10th case.",
        ],
    )
    write_json(
        "BENCH_fuzz",
        {
            "cases": result.cases,
            "seconds": elapsed,
            "cases_per_second": result.cases / elapsed,
            "replays": result.replays,
            "assert_trips": result.assert_trips,
            "explicit_checked": result.explicit_checked,
            "jobs_checked": result.jobs_checked,
            "prover_calls": result.prover_calls,
            "digest": result.digest(),
        },
    )
