"""Table 1: device drivers through the SLAM toolkit.

The paper reports, per driver: lines, number of predicates, theorem prover
calls, and C2bp runtime, for the lock-usage and IRP-handling properties.
We regenerate the same columns over the synthetic corpus (see DESIGN.md
for the substitution), plus the CEGAR iteration counts of the Section 6.1
narrative.  The qualitative shape asserted:

- the four exemplar drivers validate for both properties;
- the in-development floppy driver fails IRP handling with a concrete,
  Newton-confirmed trace;
- the loop converges within a few iterations everywhere;
- prover calls scale with the number of predicates, not program size.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_table

from repro import SafetySpec, check_property, parse_c_program
from repro.programs import all_drivers

LOCK = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
IRP = SafetySpec.complete_exactly_once("IoCompleteRequest")


def _run_corpus():
    rows = []
    verdicts = {}
    for driver in all_drivers():
        lines = parse_c_program(driver.source, driver.name).statement_count()
        for key, spec in (("lock", LOCK), ("irp", IRP)):
            started = time.perf_counter()
            result = check_property(
                driver.source, spec, entry=driver.entry, max_iterations=8
            )
            elapsed = time.perf_counter() - started
            verdicts[(driver.name, key)] = result
            rows.append(
                [
                    driver.name,
                    key,
                    lines,
                    len(result.predicates),
                    result.cegar.total_prover_calls,
                    "%.2f" % elapsed,
                    result.verdict,
                    result.iterations,
                ]
            )
    return rows, verdicts


def test_table1_drivers(benchmark):
    rows, verdicts = benchmark.pedantic(_run_corpus, rounds=1, iterations=1)
    write_table(
        "table1_drivers",
        [
            "program",
            "property",
            "lines",
            "predicates",
            "thm. prover calls",
            "runtime (s)",
            "verdict",
            "CEGAR iterations",
        ],
        rows,
        notes=[
            "Paper (Table 1) reports lines / predicates / prover calls / "
            "runtime per DDK driver; absolute numbers are testbed- and "
            "corpus-specific (our drivers are synthetic, see DESIGN.md). "
            "The reproduced shape: the exemplar drivers validate for both "
            "properties, the in-development floppy driver has a genuine "
            "IRP-handling error, and SLAM converges in a few iterations "
            "with no spurious error reports (Section 6.1).",
        ],
    )
    for driver in all_drivers():
        for key in ("lock", "irp"):
            result = verdicts[(driver.name, key)]
            assert result.verdict == driver.expected[key], (driver.name, key)
            assert result.iterations <= 5
    # The floppy IRP trace is concrete and shows the double completion.
    floppy = verdicts[("floppy", "irp")]
    completions = [
        line for line in floppy.error_trace_lines() if "IoCompleteRequest" in line
    ]
    assert len(completions) >= 2
