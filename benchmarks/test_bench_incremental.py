"""The incremental cube engine and ``--jobs`` against the fresh baseline.

Three configurations over the Table-2 corpus:

- ``fresh``: ``incremental_cubes=False`` — re-encode and rebuild a SAT
  solver for every cube query (the pre-session behaviour);
- ``incremental``: one assumption-based session per strengthening call,
  persistent solver state, shared theory lemmas;
- ``incremental+jobs``: the same plus process-parallel statement
  abstraction (``jobs=4``).

All three must print byte-identical boolean programs.  The process-wide
construction counters (:data:`repro.prover.sat.COUNTERS`,
:data:`repro.prover.cnf.COUNTERS`) quantify the savings: the incremental
engine must perform strictly fewer CNF encodings and build at least 2x
fewer solver states than the fresh baseline.  Results land in
``benchmarks/results/BENCH_incremental.json`` plus a rendered table.

``-k smoke`` selects the fixture-free fast checks used by CI.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_json, write_table

from repro import C2bp, parse_c_program, parse_predicate_file
from repro.boolprog.printer import print_bool_program
from repro.core import C2bpOptions
from repro.programs import all_table2_programs, get_program
from repro.prover import cnf as cnf_module
from repro.prover import sat as sat_module

CONFIGS = [
    ("fresh", C2bpOptions(incremental_cubes=False)),
    ("incremental", C2bpOptions(incremental_cubes=True)),
    ("incremental+jobs", C2bpOptions(incremental_cubes=True, jobs=4)),
]

#: The two cheapest corpus members, used by the CI smoke job.
SMOKE_PROGRAMS = ("partition", "listfind")


def _run_config(options, studies):
    """Abstract every study under one configuration; returns per-program
    rows plus the process-wide construction counters.

    The counters are only meaningful for in-process configurations — with
    ``jobs > 1`` the solver work happens in forked workers, so the parallel
    row reports the merged prover statistics instead."""
    sat_module.reset_counters()
    cnf_module.reset_counters()
    programs = {}
    started = time.perf_counter()
    for study in studies:
        program = parse_c_program(study.source, study.name)
        predicates = parse_predicate_file(study.predicate_text, program)
        tool = C2bp(program, predicates, options=options)
        boolean_program = tool.run()
        programs[study.name] = {
            "text": print_bool_program(boolean_program),
            "prover_calls": tool.stats.prover_calls,
            "assumption_solves": tool.prover.stats.assumption_solves,
            "lemmas_reused": tool.prover.stats.lemmas_reused,
            "cnf_encodings_saved": tool.prover.stats.cnf_encodings_saved,
            "seconds": tool.stats.seconds,
        }
    return {
        "seconds": time.perf_counter() - started,
        "programs": programs,
        "counters": {
            "solver_states": sat_module.COUNTERS["solver_states"],
            "solves": sat_module.COUNTERS["solves"],
            "cnf_encodings": cnf_module.COUNTERS["encodings"],
            "cnf_memo_hits": cnf_module.COUNTERS["memo_hits"],
        },
    }


def test_bench_incremental_configs(benchmark):
    studies = all_table2_programs()

    def run_all():
        return {
            label: _run_config(options, studies) for label, options in CONFIGS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Differential identity: every configuration prints the same program.
    for study in studies:
        texts = {
            label: results[label]["programs"][study.name]["text"]
            for label in results
        }
        assert len(set(texts.values())) == 1, "configs disagree on %s" % study.name

    fresh = results["fresh"]["counters"]
    incremental = results["incremental"]["counters"]
    # The headline claims: strictly fewer CNF encodings, and at least 2x
    # fewer solver-state constructions, than the fresh baseline.
    assert incremental["cnf_encodings"] < fresh["cnf_encodings"]
    assert fresh["solver_states"] >= 2 * incremental["solver_states"]
    total_assumption_solves = sum(
        row["assumption_solves"]
        for row in results["incremental"]["programs"].values()
    )
    assert total_assumption_solves > 0

    payload = {
        label: {
            "seconds": round(entry["seconds"], 3),
            "counters": entry["counters"],
            "programs": {
                name: {
                    key: value
                    for key, value in row.items()
                    if key != "text"  # identity already asserted above
                }
                for name, row in entry["programs"].items()
            },
        }
        for label, entry in results.items()
    }
    write_json("BENCH_incremental", payload)

    rows = []
    for label, entry in results.items():
        counters = entry["counters"]
        rows.append(
            [
                label,
                "%.2f" % entry["seconds"],
                counters["solver_states"],
                counters["solves"],
                counters["cnf_encodings"],
                counters["cnf_memo_hits"],
                sum(
                    row["assumption_solves"]
                    for row in entry["programs"].values()
                ),
            ]
        )
    write_table(
        "BENCH_incremental",
        [
            "config",
            "seconds",
            "solver states",
            "solves",
            "CNF encodings",
            "CNF memo hits",
            "assumption solves",
        ],
        rows,
        notes=[
            "Table-2 corpus under three configurations.  'fresh' rebuilds "
            "encoding + solver per cube query; 'incremental' opens one "
            "assumption-based session per strengthening call; "
            "'incremental+jobs' adds --jobs 4 statement parallelism (its "
            "process-wide counters stay in the forked workers, so read its "
            "seconds column and the per-program prover stats in "
            "BENCH_incremental.json).  All configurations print identical "
            "boolean programs.",
        ],
    )


def test_smoke_incremental_engine():
    """CI smoke (no benchmark fixture): the incremental engine actually
    engages on the two smallest corpus programs and agrees with the
    fresh baseline."""
    studies = [get_program(name) for name in SMOKE_PROGRAMS]
    incremental = _run_config(C2bpOptions(incremental_cubes=True), studies)
    fresh = _run_config(C2bpOptions(incremental_cubes=False), studies)
    for study in studies:
        assert (
            incremental["programs"][study.name]["text"]
            == fresh["programs"][study.name]["text"]
        )
        assert incremental["programs"][study.name]["assumption_solves"] > 0
    assert incremental["counters"]["cnf_encodings"] < fresh["counters"]["cnf_encodings"]
    assert fresh["counters"]["solver_states"] >= (
        2 * incremental["counters"]["solver_states"]
    )


def test_smoke_parallel_jobs():
    """CI smoke: --jobs produces the identical program on a multi-procedure
    study with call-site temporaries."""
    study = get_program("qsort")
    serial = _run_config(C2bpOptions(jobs=1), [study])
    parallel = _run_config(C2bpOptions(jobs=4), [study])
    assert (
        serial["programs"][study.name]["text"]
        == parallel["programs"][study.name]["text"]
    )
