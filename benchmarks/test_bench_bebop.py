"""The Bebop fast path against the legacy engine.

Two workloads, both run under each engine:

- **Table 2**: the five case-study programs, abstracted once, then model
  checked — one Bebop run per program (compile cost is not amortized);
- **Table 1**: the eight drivers x {lock, IRP} through the full CEGAR
  loop, where the fast path also reuses the BDD manager and the compiled
  transfer relations of unchanged procedures across iterations.

Both engines must agree exactly — same invariant strings at every label,
same assertion failures, same CEGAR verdicts and iteration counts.  The
process-wide BDD counters (:data:`repro.bdd.manager.COUNTERS`) quantify
the savings; the headline assertion is a >=2x reduction in ``ite``
operations over the combined corpus, with reduced wall-clock.  Results
land in ``benchmarks/results/BENCH_bebop.json`` plus a rendered table.

``-k smoke`` selects the fixture-free fast checks used by CI.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_json, write_table

from repro import (
    Bebop,
    C2bp,
    SafetySpec,
    check_property,
    parse_c_program,
    parse_predicate_file,
)
from repro.bdd import manager as bdd_module
from repro.core import C2bpOptions
from repro.engine import EngineContext
from repro.programs import all_drivers, all_table2_programs, get_driver, get_program

LOCK = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
IRP = SafetySpec.complete_exactly_once("IoCompleteRequest")

#: The fixture-free CI smoke subset.
SMOKE_PROGRAMS = ("partition", "listfind")
SMOKE_DRIVER = "floppy"


def _abstract(studies):
    """Abstract each study once; both engines check the same program."""
    abstracted = []
    for study in studies:
        program = parse_c_program(study.source, study.name)
        predicates = parse_predicate_file(study.predicate_text, program)
        abstracted.append((study, C2bp(program, predicates).run()))
    return abstracted


def _check_table2(abstracted, legacy):
    """Model check every abstracted study under one engine."""
    bdd_module.reset_counters()
    started = time.perf_counter()
    programs = {}
    results = {}
    for study, boolean_program in abstracted:
        checker = Bebop(boolean_program, main=study.entry, legacy=legacy)
        result = checker.run()
        results[study.name] = result
        programs[study.name] = {
            "worklist_steps": result.steps,
            "assertion_failures": len(result.assertion_failures),
            "ite_calls": checker.manager.ite_calls,
            "bdd_nodes": checker.manager.live_nodes,
        }
    return {
        "seconds": time.perf_counter() - started,
        "ite": bdd_module.COUNTERS["ite"],
        "counters": dict(bdd_module.COUNTERS),
        "programs": programs,
        "results": results,
    }


def _check_table1(pairs, legacy):
    """Run the CEGAR loop for every (driver, property) under one engine."""
    bdd_module.reset_counters()
    started = time.perf_counter()
    runs = {}
    for driver, key, spec in pairs:
        context = EngineContext(options=C2bpOptions(bebop_legacy=legacy))
        result = check_property(
            driver.source, spec, entry=driver.entry, max_iterations=8,
            context=context,
        )
        snapshot = context.stats.snapshot()
        runs["%s/%s" % (driver.name, key)] = {
            "verdict": result.verdict,
            "iterations": result.iterations,
            "seconds": round(result.cegar.seconds, 3),
            "transfers_reused": (
                snapshot.get("bebop_reuse", {}).get("transfers_reused", 0)
            ),
            "result": result,
        }
    return {
        "seconds": time.perf_counter() - started,
        "ite": bdd_module.COUNTERS["ite"],
        "counters": dict(bdd_module.COUNTERS),
        "runs": runs,
    }


def _assert_identical_invariants(abstracted, fast, legacy):
    for study, _ in abstracted:
        fast_result = fast["results"][study.name]
        legacy_result = legacy["results"][study.name]
        assert fast_result.all_invariants() == legacy_result.all_invariants(), (
            "engines disagree on %s" % study.name
        )
        assert len(fast_result.assertion_failures) == len(
            legacy_result.assertion_failures
        ), study.name


def test_bench_bebop_engines(benchmark):
    studies = all_table2_programs()
    pairs = [
        (driver, key, spec)
        for driver in all_drivers()
        for key, spec in (("lock", LOCK), ("irp", IRP))
    ]

    def run_all():
        abstracted = _abstract(studies)
        return {
            "abstracted": abstracted,
            "table2_fast": _check_table2(abstracted, legacy=False),
            "table2_legacy": _check_table2(abstracted, legacy=True),
            "table1_fast": _check_table1(pairs, legacy=False),
            "table1_legacy": _check_table1(pairs, legacy=True),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Differential identity on every benchmark program.
    _assert_identical_invariants(
        results["abstracted"], results["table2_fast"], results["table2_legacy"]
    )
    for name, fast_run in results["table1_fast"]["runs"].items():
        legacy_run = results["table1_legacy"]["runs"][name]
        assert fast_run["verdict"] == legacy_run["verdict"], name
        assert fast_run["iterations"] == legacy_run["iterations"], name
        fast_bp = fast_run["result"].cegar.boolean_program
        assert (
            Bebop(fast_bp).run().all_invariants()
            == Bebop(fast_bp, legacy=True).run().all_invariants()
        ), name

    # The headline: >=2x fewer ite operations over the combined corpus,
    # and the CEGAR runs actually reuse compiled transfers.
    fast_ite = results["table2_fast"]["ite"] + results["table1_fast"]["ite"]
    legacy_ite = results["table2_legacy"]["ite"] + results["table1_legacy"]["ite"]
    assert legacy_ite >= 2 * fast_ite, (fast_ite, legacy_ite)
    assert any(
        run["transfers_reused"] > 0
        for run in results["table1_fast"]["runs"].values()
    )
    fast_seconds = results["table2_fast"]["seconds"] + results["table1_fast"]["seconds"]
    legacy_seconds = (
        results["table2_legacy"]["seconds"] + results["table1_legacy"]["seconds"]
    )
    assert fast_seconds < legacy_seconds, (fast_seconds, legacy_seconds)

    payload = {"combined": {
        "fast_ite": fast_ite,
        "legacy_ite": legacy_ite,
        "ite_reduction": round(legacy_ite / max(fast_ite, 1), 2),
        "fast_seconds": round(fast_seconds, 3),
        "legacy_seconds": round(legacy_seconds, 3),
    }}
    for label in ("table2_fast", "table2_legacy"):
        entry = results[label]
        payload[label] = {
            "seconds": round(entry["seconds"], 3),
            "counters": entry["counters"],
            "programs": entry["programs"],
        }
    for label in ("table1_fast", "table1_legacy"):
        entry = results[label]
        payload[label] = {
            "seconds": round(entry["seconds"], 3),
            "counters": entry["counters"],
            "runs": {
                name: {key: value for key, value in run.items() if key != "result"}
                for name, run in entry["runs"].items()
            },
        }
    write_json("BENCH_bebop", payload)

    rows = []
    for workload in ("table2", "table1"):
        fast = results[workload + "_fast"]
        legacy = results[workload + "_legacy"]
        rows.append(
            [
                workload,
                fast["ite"],
                legacy["ite"],
                "%.2fx" % (legacy["ite"] / max(fast["ite"], 1)),
                "%.2f" % fast["seconds"],
                "%.2f" % legacy["seconds"],
                fast["counters"]["renames_shifted"],
                fast["counters"]["and_exists"],
            ]
        )
    rows.append(
        [
            "combined",
            fast_ite,
            legacy_ite,
            "%.2fx" % (legacy_ite / max(fast_ite, 1)),
            "%.2f" % fast_seconds,
            "%.2f" % legacy_seconds,
            "",
            "",
        ]
    )
    write_table(
        "BENCH_bebop",
        [
            "workload",
            "fast ite",
            "legacy ite",
            "reduction",
            "fast s",
            "legacy s",
            "shift renames",
            "and-exists steps",
        ],
        rows,
        notes=[
            "Table-2 programs are abstracted once and model checked by both "
            "engines; Table-1 drivers run the full CEGAR loop per property "
            "(the fast path reuses one BDD manager and the compiled "
            "transfer relations of unchanged procedures across iterations). "
            "Both engines report identical invariants, assertion failures, "
            "and verdicts on every benchmark program; the fast path does it "
            "with >=2x fewer ite operations.",
        ],
    )


def test_smoke_fast_vs_legacy():
    """CI smoke (no benchmark fixture): fast and legacy engines agree on
    the two smallest corpus programs and the fast path does less work."""
    abstracted = _abstract([get_program(name) for name in SMOKE_PROGRAMS])
    fast = _check_table2(abstracted, legacy=False)
    legacy = _check_table2(abstracted, legacy=True)
    _assert_identical_invariants(abstracted, fast, legacy)
    assert legacy["ite"] > 1.5 * fast["ite"], (fast["ite"], legacy["ite"])


def test_smoke_cegar_reuse():
    """CI smoke: the multi-iteration floppy/IRP run reuses compiled
    transfer relations and matches the legacy verdict."""
    driver = get_driver(SMOKE_DRIVER)
    table = _check_table1([(driver, "irp", IRP)], legacy=False)
    run = table["runs"]["%s/irp" % SMOKE_DRIVER]
    assert run["iterations"] > 1
    assert run["transfers_reused"] > 0
    legacy = _check_table1([(driver, "irp", IRP)], legacy=True)
    assert run["verdict"] == legacy["runs"]["%s/irp" % SMOKE_DRIVER]["verdict"]
