"""Table 2: the array- and heap-intensive programs through C2bp.

Columns as in the paper: program, lines, predicates, theorem prover calls,
runtime.  The qualitative shape asserted:

- the cone-of-influence heuristics keep prover calls manageable for the
  array and list programs;
- ``reverse`` is the outlier: every pair of pointers may alias, so the
  heuristics cannot avoid the exponential cube exploration (its calls
  dwarf the list examples', as in the paper);
- the kmp/qsort bounds asserts are all discharged (the Section 6.2 loop
  invariants), and the partition/listfind invariants hold.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_table

from repro import Bebop, C2bp, parse_c_program, parse_predicate_file
from repro.programs import all_table2_programs


def _run_one(study):
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    started = time.perf_counter()
    tool = C2bp(program, predicates)
    boolean_program = tool.run()
    c2bp_seconds = time.perf_counter() - started
    started = time.perf_counter()
    check = Bebop(boolean_program, main=study.entry).run()
    bebop_seconds = time.perf_counter() - started
    return {
        "study": study,
        "lines": program.statement_count(),
        "predicates": len(predicates),
        "calls": tool.stats.prover_calls,
        "c2bp_seconds": c2bp_seconds,
        "bebop_seconds": bebop_seconds,
        "check": check,
    }


def _run_corpus():
    return [_run_one(study) for study in all_table2_programs()]


def test_table2_programs(benchmark):
    results = benchmark.pedantic(_run_corpus, rounds=1, iterations=1)
    rows = []
    for entry in results:
        rows.append(
            [
                entry["study"].name,
                entry["lines"],
                entry["predicates"],
                entry["calls"],
                "%.2f" % entry["c2bp_seconds"],
                "%.2f" % entry["bebop_seconds"],
                len(entry["check"].assertion_failures),
            ]
        )
    write_table(
        "table2_programs",
        [
            "program",
            "lines",
            "predicates",
            "thm. prover calls",
            "C2bp (s)",
            "Bebop (s)",
            "undischarged asserts",
        ],
        rows,
        notes=[
            "Paper (Table 2) reports lines / predicates / prover calls / "
            "runtime for kmp, qsort, partition, listfind, reverse (the "
            "numeric cells are not preserved in our source text of the "
            "paper; Section 6.2 gives the qualitative claims).  Reproduced "
            "shape: the cone-of-influence heuristics keep the array/list "
            "programs cheap, while reverse's every-pair-may-alias "
            "structure forces the exponential cube exploration and "
            "dominates prover calls; Bebop finishes far under the "
            "paper's 10-second bound on every boolean program.",
        ],
    )
    by_name = {entry["study"].name: entry for entry in results}
    # Shape assertions.
    assert by_name["reverse"]["calls"] > 5 * by_name["partition"]["calls"]
    assert by_name["reverse"]["calls"] > 5 * by_name["listfind"]["calls"]
    assert by_name["kmp"]["check"].assertion_failures == []
    assert by_name["qsort"]["check"].assertion_failures == []
    for entry in results:
        assert entry["bebop_seconds"] < 10.0  # the paper's "under 10 seconds"


def test_table2_partition_invariant_row(benchmark):
    from repro.programs import get_program

    study = get_program("partition")

    def run():
        return _run_one(study)

    entry = benchmark.pedantic(run, rounds=1, iterations=1)
    cubes = entry["check"].invariant_cubes("partition", label="L")
    assert all(
        cube["curr==0"] is False and cube["curr->val>v"] is True for cube in cubes
    )
