"""The static-analysis subsystem against its ablations.

Five configurations (see ``docs/ANALYSIS.md``):

- ``full``: every pass on (the default);
- ``no-live-predicates``: every slot runs its cube search;
- ``no-intervals``: no pre-prover query discharge, no Newton-stall
  candidate predicates;
- ``no-bp-dce``: Bebop checks the full boolean program;
- ``no-analysis``: the whole subsystem off (the pre-analysis pipeline).

Two workloads: the Table-2 programs through C2bp + Bebop (where the
interval discharger and mod/ref memoization save prover work), and the
Table-1 drivers through the CEGAR loop for both properties (where
cross-iteration reuse and boolean-program DCE engage).  Every
configuration must agree on reachability verdicts and assertion-failure
sites; the savings are asserted on the counters.  Results land in
``benchmarks/results/BENCH_analysis.json`` plus a rendered table.

``-k smoke`` selects the fixture-free fast checks used by CI.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_json, write_table

from repro import Bebop, C2bp, SafetySpec, check_property, parse_c_program, parse_predicate_file
from repro.analysis import eliminate_dead_variables
from repro.core import C2bpOptions
from repro.engine import EngineContext
from repro.programs import all_drivers, all_table2_programs, get_driver, get_program

CONFIGS = [
    ("full", {}),
    ("no-live-predicates", {"live_predicates": False}),
    ("no-intervals", {"intervals": False}),
    ("no-bp-dce", {"bp_dce": False}),
    ("no-analysis", {"use_analysis": False}),
]

LOCK = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
IRP = SafetySpec.complete_exactly_once("IoCompleteRequest")


def _failure_sites(result):
    return {
        (proc, node.stmt.source_sid, node.stmt.comment)
        for proc, node, _ in result.assertion_failures
    }


def _abstract_study(study, **option_kwargs):
    """One Table-2 program through C2bp + Bebop under one configuration."""
    program = parse_c_program(study.source, study.name)
    predicates = parse_predicate_file(study.predicate_text, program)
    context = EngineContext(options=C2bpOptions(**option_kwargs))
    started = time.perf_counter()
    tool = C2bp(program, predicates, context=context)
    boolean_program = tool.run()
    check = Bebop(boolean_program, main=study.entry).run()
    elapsed = time.perf_counter() - started
    analysis = (
        tool.analysis.stats.snapshot() if tool.analysis is not None else {}
    )
    return {
        "prover_calls": tool.stats.prover_calls,
        "prover_queries": tool.stats.prover_queries,
        "seconds": elapsed,
        "error_reached": check.error_reached,
        "failure_sites": _failure_sites(check),
        "analysis": analysis,
        "boolean_program": boolean_program,
    }


def _check_driver(driver, spec, **option_kwargs):
    """One Table-1 driver through the CEGAR loop under one configuration."""
    context = EngineContext(options=C2bpOptions(**option_kwargs))
    started = time.perf_counter()
    result = check_property(
        driver.source, spec, entry=driver.entry, max_iterations=8,
        context=context,
    )
    elapsed = time.perf_counter() - started
    stats = getattr(context, "analysis_stats", None)  # absent when off
    return {
        "verdict": result.verdict,
        "iterations": result.iterations,
        "prover_calls": result.cegar.total_prover_calls,
        "seconds": elapsed,
        "analysis": stats.snapshot() if stats is not None else {},
    }


def test_bench_analysis_configs(benchmark):
    studies = all_table2_programs()
    drivers = all_drivers()

    def run_all():
        table2 = {
            label: {
                study.name: _abstract_study(study, **kwargs)
                for study in studies
            }
            for label, kwargs in CONFIGS
        }
        cegar = {
            label: {
                "%s/%s" % (driver.name, key): _check_driver(driver, spec, **kwargs)
                for driver in drivers
                for key, spec in (("lock", LOCK), ("irp", IRP))
            }
            for label, kwargs in (("full", {}), ("no-analysis", {"use_analysis": False}))
        }
        return table2, cegar

    table2, cegar = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Every configuration agrees on reachability and failure sites.
    for study in studies:
        verdicts = {
            label: table2[label][study.name]["error_reached"]
            for label, _ in CONFIGS
        }
        sites = {
            label: table2[label][study.name]["failure_sites"]
            for label, _ in CONFIGS
        }
        assert len(set(verdicts.values())) == 1, "verdicts differ on %s" % study.name
        assert len(set(map(frozenset, sites.values()))) == 1, (
            "failure sites differ on %s" % study.name
        )
    for key in cegar["full"]:
        assert cegar["full"][key]["verdict"] == cegar["no-analysis"][key]["verdict"], key
        assert (
            cegar["full"][key]["iterations"]
            == cegar["no-analysis"][key]["iterations"]
        ), key

    def corpus_calls(label):
        return sum(row["prover_calls"] for row in table2[label].values())

    # The headline claims: the full configuration performs measurably
    # fewer prover calls than the pre-analysis pipeline on Table 2, the
    # interval discharger actually fires there, and under CEGAR the
    # BP-DCE and cross-iteration reuse counters engage on at least one
    # driver/property pair.
    assert corpus_calls("full") < corpus_calls("no-analysis")
    total_discharged = sum(
        row["analysis"].get("queries_discharged_interval", 0)
        for row in table2["full"].values()
    )
    assert total_discharged > 0
    assert all(
        row["analysis"].get("queries_discharged_interval", 0) == 0
        for row in table2["no-intervals"].values()
    )
    assert any(
        row["analysis"].get("bp_vars_eliminated", 0) > 0
        for row in cegar["full"].values()
    )
    assert any(
        row["analysis"].get("c2bp_stmts_reused", 0) > 0
        for row in cegar["full"].values()
    )

    payload = {
        "table2": {
            label: {
                name: {
                    "prover_calls": row["prover_calls"],
                    "prover_queries": row["prover_queries"],
                    "seconds": round(row["seconds"], 3),
                    "error_reached": row["error_reached"],
                    "analysis": row["analysis"],
                }
                for name, row in entry.items()
            }
            for label, entry in table2.items()
        },
        "cegar_drivers": {
            label: {
                name: {
                    key: value
                    for key, value in row.items()
                }
                for name, row in entry.items()
            }
            for label, entry in cegar.items()
        },
    }
    for entry in payload["cegar_drivers"].values():
        for row in entry.values():
            row["seconds"] = round(row["seconds"], 3)
    write_json("BENCH_analysis", payload)

    rows = []
    for label, _ in CONFIGS:
        entry = table2[label]
        discharged = sum(
            row["analysis"].get("queries_discharged_interval", 0)
            for row in entry.values()
        )
        rows.append(
            [
                label,
                corpus_calls(label),
                sum(row["prover_queries"] for row in entry.values()),
                discharged,
                "%.2f" % sum(row["seconds"] for row in entry.values()),
            ]
        )
    write_table(
        "BENCH_analysis",
        [
            "config",
            "thm. prover calls",
            "prover queries",
            "interval-discharged",
            "seconds",
        ],
        rows,
        notes=[
            "Table-2 corpus through C2bp + Bebop under the analysis "
            "ablations; all configurations agree on reachability verdicts "
            "and assertion-failure sites.  The CEGAR driver rows (both "
            "Table-1 properties, full vs no-analysis, identical verdicts "
            "and iteration counts) are in BENCH_analysis.json — the "
            "BP-DCE and cross-iteration reuse counters engage there.",
        ],
    )


def test_smoke_analysis_abstraction():
    """CI smoke (no benchmark fixture): verdict neutrality and the DCE
    projection on the two smallest Table-2 programs."""
    for name in ("partition", "listfind"):
        study = get_program(name)
        full = _abstract_study(study)
        off = _abstract_study(study, use_analysis=False)
        assert full["error_reached"] == off["error_reached"]
        assert full["failure_sites"] == off["failure_sites"]
        assert full["prover_calls"] <= off["prover_calls"]
    # partition carries never-read boolean variables: DCE must project
    # them away without moving the verdict.
    study = get_program("partition")
    full = _abstract_study(study)
    slim, removed = eliminate_dead_variables(full["boolean_program"])
    assert removed >= 1
    check = Bebop(slim, main=study.entry).run()
    assert check.error_reached == full["error_reached"]
    assert _failure_sites(check) == full["failure_sites"]


def test_smoke_analysis_cegar():
    """CI smoke: the multi-iteration floppy/IRP run engages interval
    discharge, BP-DCE, and cross-iteration reuse, with the same verdict
    as the pre-analysis pipeline."""
    driver = get_driver("floppy")
    full = _check_driver(driver, IRP)
    off = _check_driver(driver, IRP, use_analysis=False)
    assert full["verdict"] == off["verdict"]
    assert full["iterations"] == off["iterations"]
    analysis = full["analysis"]
    assert analysis["queries_discharged_interval"] > 0
    assert analysis["bp_vars_eliminated"] > 0
    assert analysis["c2bp_stmts_reused"] > 0
    assert analysis["modref_summary_hits"] > 0
