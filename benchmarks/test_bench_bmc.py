"""Bounded model checking over the driver corpus: cost and agreement.

Not a paper table — SLAM has no bit-precise engine; this is the
engineering health check for the PR-10 second-verdict engine.  Every
driver is instrumented with the lock-discipline and IRP-completion
properties (the Table-1 corpus) and bounded-model-checked at depths
5/10/20 and width 16.  The table records the encode/solve split and the
formula size per run, and asserts that every *complete* BMC verdict
(``safe`` / ``unsafe``) matches the pipeline's expected verdict — the
two engines were built independently, so agreement on the corpus pins
both.

``-k smoke`` selects the fixture-free fast subset used by CI.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

pytestmark = pytest.mark.bench

from _tables import write_json, write_table

from repro import SafetySpec
from repro.bmc import VERDICT_SAFE_UP_TO_K, VERDICT_UNSUPPORTED, run_bmc
from repro.cfront import parse_c_program
from repro.programs import all_drivers
from repro.slam.instrument import instrument_program

LOCK = SafetySpec.lock_discipline("KeAcquireSpinLock", "KeReleaseSpinLock")
IRP = SafetySpec.complete_exactly_once("IoCompleteRequest")
DEPTHS = (5, 10, 20)
WIDTH = 16


def _instrumented(driver, spec):
    program = parse_c_program(driver.source, driver.name)
    return instrument_program(program, spec, entry=driver.entry)


def _run_corpus(depths=DEPTHS):
    rows = []
    runs = []
    for driver in all_drivers():
        for key, spec in (("lock", LOCK), ("irp", IRP)):
            instrumented = _instrumented(driver, spec)
            expected = driver.expected[key]
            for depth in depths:
                result = run_bmc(
                    instrumented, entry=driver.entry, depth=depth, width=WIDTH
                )
                if result.verdict == VERDICT_SAFE_UP_TO_K:
                    agreement = "bounded"
                elif result.verdict == VERDICT_UNSUPPORTED:
                    # The toaster driver leaves the bit-precise fragment
                    # (struct state); no verdict to compare.
                    agreement = "n/a"
                else:
                    agreement = "yes" if result.verdict == expected else "NO"
                rows.append(
                    [
                        driver.name,
                        key,
                        depth,
                        result.verdict,
                        expected,
                        agreement,
                        result.clauses,
                        "%.4f" % result.encode_seconds,
                        "%.4f" % result.solve_seconds,
                    ]
                )
                runs.append(
                    {
                        "program": driver.name,
                        "property": key,
                        "depth": depth,
                        "width": WIDTH,
                        "verdict": result.verdict,
                        "expected": expected,
                        "agreement": agreement,
                        "vars": result.vars,
                        "clauses": result.clauses,
                        "encode_seconds": result.encode_seconds,
                        "solve_seconds": result.solve_seconds,
                    }
                )
    return rows, runs


def test_bmc_agreement_smoke():
    """Fast check: the floppy driver (one safe property, one genuinely
    unsafe) gets the expected complete verdicts at depth 10."""
    for key, spec in (("lock", LOCK), ("irp", IRP)):
        driver = all_drivers()[0]
        assert driver.name == "floppy"
        result = run_bmc(
            _instrumented(driver, spec), entry=driver.entry, depth=10, width=WIDTH
        )
        assert result.complete, result.verdict
        assert result.verdict == driver.expected[key]
        if result.verdict == "unsafe":
            assert result.witness is not None


def test_bench_bmc_corpus(benchmark):
    rows, runs = benchmark.pedantic(_run_corpus, rounds=1, iterations=1)
    write_table(
        "BENCH_bmc",
        [
            "program",
            "property",
            "depth",
            "bmc verdict",
            "pipeline verdict",
            "agree",
            "clauses",
            "encode (s)",
            "solve (s)",
        ],
        rows,
        notes=[
            "Width 16, depths {5, 10, 20} over the instrumented Table-1 "
            "corpus.  'bounded' = safe-up-to-k (the bound was exhausted), "
            "'n/a' = outside the bit-precise fragment; every complete "
            "verdict must agree with the abstraction pipeline's expected "
            "verdict.",
        ],
    )
    write_json(
        "BENCH_bmc",
        {
            "width": WIDTH,
            "depths": list(DEPTHS),
            "runs": runs,
            "encode_seconds_total": sum(r["encode_seconds"] for r in runs),
            "solve_seconds_total": sum(r["solve_seconds"] for r in runs),
        },
    )
    assert all(run["agreement"] != "NO" for run in runs)
    assert any(run["verdict"] == "unsafe" for run in runs)
